//! Fixture tests for the rule engine: one known-bad snippet per rule
//! (asserting it triggers exactly that rule), clean counterparts for the
//! exemption machinery, and the lock-down assertions on the real
//! workspace — the committed baseline must pass ratchet mode and must
//! contain no L2/L4 entries (those contracts hold outright).

use std::path::Path;

use locap_lint::{analyze_files, validate_lint_schema, Baseline, Config, Summary};
use locap_obs::json::Json;

/// Runs the analyzer over one in-memory file under the locap config.
fn lint_one(path: &str, src: &str) -> Vec<locap_lint::Diagnostic> {
    analyze_files(&[(path.to_string(), src.to_string())], &Config::locap())
}

/// Asserts every diagnostic of `diags` is from `rule` and there is at
/// least one — the fixture must trigger exactly the rule it targets.
fn assert_only(rule: &str, diags: &[locap_lint::Diagnostic]) {
    assert!(!diags.is_empty(), "fixture for {rule} triggered nothing");
    for d in diags {
        assert_eq!(d.rule, rule, "fixture for {rule} also triggered: {}", d.render());
    }
}

#[test]
fn l1_fires_on_unwrap_expect_macros_and_indexing() {
    let bad = r#"
pub fn f(v: &[u32], i: usize) -> u32 {
    let a = v.first().unwrap();
    let b = v.last().expect("nonempty");
    if i > v.len() { panic!("oob"); }
    *a + *b + v[i]
}
"#;
    let diags = lint_one("crates/core/src/fixture.rs", bad);
    assert_only("L1", &diags);
    assert_eq!(diags.len(), 4, "{diags:#?}");
}

#[test]
fn l1_exempts_tests_and_documented_panics() {
    let clean = r#"
/// Doubles the head.
///
/// # Panics
///
/// Panics when `v` is empty — callers check first.
pub fn head2(v: &[u32]) -> u32 {
    2 * v[0]
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let v = vec![1u32];
        assert_eq!(super::head2(&v), v.first().copied().unwrap() * 2);
    }
}
"#;
    assert!(lint_one("crates/core/src/fixture.rs", clean).is_empty());
    // out of scope entirely: same bad code outside the execution core
    let bad = "pub fn f(v: &[u32]) -> u32 { v[0] }\n";
    assert!(lint_one("crates/algos/src/fixture.rs", bad).is_empty());
}

#[test]
fn l2_fires_on_unallowlisted_clock_reads() {
    let bad = r#"
use std::time::Instant;
pub fn how_long() -> std::time::Duration {
    let t0 = Instant::now();
    t0.elapsed()
}
"#;
    let diags = lint_one("crates/algos/src/fixture.rs", bad);
    assert_only("L2", &diags);
    // ... and on exceeding a file's allowance (budget.rs allows one)
    let two = "pub fn f() { let _ = Instant::now(); let _ = Instant::now(); }\n";
    let diags = lint_one("crates/graph/src/budget.rs", two);
    assert_only("L2", &diags);
    assert_eq!(diags.len(), 1, "only the read beyond the allowance fires");
}

#[test]
fn l2_exempts_tests_and_allowlisted_sites() {
    let clean = r#"
pub fn f() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let _ = std::time::Instant::now();
    }
}
"#;
    assert!(lint_one("crates/algos/src/fixture.rs", clean).is_empty());
    let allowed = "pub fn today() { let _ = SystemTime::now(); }\n";
    assert!(lint_one("crates/bench/src/gate.rs", allowed).is_empty());
}

#[test]
fn l3_fires_on_inline_and_unresolved_metric_names() {
    let bad = r#"
pub fn f() {
    obs::counter("hot/loop").inc();
    obs::gauge(IMPORTED_ELSEWHERE).set(1);
}
"#;
    let diags = lint_one("crates/graph/src/fixture.rs", bad);
    assert_only("L3", &diags);
    assert_eq!(diags.len(), 2, "{diags:#?}");
}

#[test]
fn l3_accepts_consts_and_catches_duplicate_construction() {
    let clean = r#"
const HOT_LOOP: &str = "hot/loop";
pub fn f(i: u32) {
    obs::counter(HOT_LOOP).inc();
    obs::counter(&format!("hot/worker/{i}")).inc();
}
"#;
    assert!(lint_one("crates/graph/src/fixture.rs", clean).is_empty());

    // the publish-twice bug class: same name constructed in two files
    let a = "const N: &str = \"dup/name\";\npub fn f() { obs::counter(N).inc(); }\n";
    let b = "const M: &str = \"dup/name\";\npub fn g() { obs::counter(M).inc(); }\n";
    let diags = analyze_files(
        &[
            ("crates/graph/src/a.rs".to_string(), a.to_string()),
            ("crates/lifts/src/b.rs".to_string(), b.to_string()),
        ],
        &Config::locap(),
    );
    assert_only("L3", &diags);
    assert_eq!(diags.len(), 1);
    assert!(diags[0].message.contains("2 site(s)"), "{}", diags[0].message);
    assert_eq!(diags[0].file, "crates/lifts/src/b.rs", "the second site is the violation");
}

#[test]
fn l3_covers_latency_and_the_telemetry_families() {
    // the serve telemetry surface rides the same discipline: lifecycle
    // counters are consts, the per-request phase latency family is one
    // format! template
    let clean = r#"
const DROPPED: &str = "telemetry/dropped";
pub fn f(pipeline: &str, phase: &str, ns: u64) {
    obs::counter(DROPPED).inc();
    obs::latency(&format!("serve/request/{pipeline}/{phase}")).record_ns(ns);
}
"#;
    assert!(lint_one("crates/serve/src/fixture.rs", clean).is_empty());

    // an inline latency name is as much a violation as an inline counter
    let bad = r#"
pub fn f(ns: u64) {
    obs::latency("serve/request/census/run").record_ns(ns);
}
"#;
    let diags = lint_one("crates/serve/src/fixture.rs", bad);
    assert_only("L3", &diags);
    assert_eq!(diags.len(), 1, "{diags:#?}");

    // two files claiming the same format! family collide like consts do
    let a = r#"pub fn f(p: &str) { obs::latency(&format!("serve/request/{p}")).record_ns(1); }"#;
    let b = r#"pub fn g(p: &str) { obs::latency(&format!("serve/request/{p}")).record_ns(1); }"#;
    let diags = analyze_files(
        &[
            ("crates/serve/src/a.rs".to_string(), a.to_string()),
            ("crates/serve/src/b.rs".to_string(), b.to_string()),
        ],
        &Config::locap(),
    );
    assert_only("L3", &diags);
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert_eq!(diags[0].file, "crates/serve/src/b.rs", "the second site is the violation");
}

#[test]
fn l3_covers_the_store_counter_family() {
    // the result store's hit/miss/corruption counters follow the same
    // const-name discipline as every other metric family
    let clean = r#"
pub const STORE_WARM_HIT: &str = "store/warm_hit";
pub const STORE_CORRUPT: &str = "store/corrupt";
pub fn f() {
    obs::counter(STORE_WARM_HIT).inc();
    obs::counter(STORE_CORRUPT).inc();
}
"#;
    assert!(lint_one("crates/store/src/fixture.rs", clean).is_empty());

    // inlining a store counter name is a violation like any other
    let bad = r#"
pub fn f() {
    obs::counter("store/warm_hit").inc();
}
"#;
    let diags = lint_one("crates/store/src/fixture.rs", bad);
    assert_only("L3", &diags);
    assert_eq!(diags.len(), 1, "{diags:#?}");
}

#[test]
fn l1_covers_the_store_crate() {
    // the store sits on the serving hot path: panic discipline applies
    let fixture = "#![forbid(unsafe_code)]\npub fn f(v: &[u8]) -> u8 { v[0] }\n";
    let diags = lint_one("crates/store/src/lib.rs", fixture);
    assert_only("L1", &diags);
    assert!(!diags.is_empty(), "indexing in crates/store/src is a violation");
}

#[test]
fn l4_fires_on_crate_roots_without_forbid() {
    let bad = "//! A crate.\n\npub fn f() {}\n";
    assert_only("L4", &lint_one("crates/fixture/src/lib.rs", bad));
    assert_only("L4", &lint_one("crates/fixture/src/bin/tool.rs", bad));
    // non-root module files are not crate roots
    assert!(lint_one("crates/fixture/src/inner.rs", bad).is_empty());
    let clean = "//! A crate.\n\n#![forbid(unsafe_code)]\n\npub fn f() {}\n";
    assert!(lint_one("crates/fixture/src/lib.rs", clean).is_empty());
}

#[test]
fn l5_fires_on_unpaired_budgeted_fns() {
    let bad = "pub fn census_budgeted(b: B) -> R { imp(Some(b)) }\n";
    let diags = lint_one("crates/lifts/src/fixture.rs", bad);
    assert_only("L5", &diags);

    let clean = "pub fn census() -> R { imp(None) }\n\
                 pub fn census_budgeted(b: B) -> R { imp(Some(b)) }\n";
    assert!(lint_one("crates/lifts/src/fixture.rs", clean).is_empty());

    // reverse direction, entry-point files only: a naive variant demands
    // a budgeted one
    let entry = "pub fn run() -> R { imp() }\npub fn run_naive() -> R { reference() }\n";
    let diags = lint_one("crates/models/src/run.rs", entry);
    assert_only("L5", &diags);
    assert!(lint_one("crates/lifts/src/fixture.rs", entry).is_empty(), "not an entry-point file");
}

#[test]
fn l6_fires_on_missing_rank_and_todo_placeholder() {
    // an unannotated lock declaration fires, and proposes the TODO
    // scaffolding as a mechanical fix
    let bad = "static QUEUE: Mutex<u8> = Mutex::new(0);\n";
    let diags = lint_one("crates/serve/src/fixture.rs", bad);
    assert_only("L6", &diags);
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert!(diags[0].message.contains("lock-rank=N"), "{}", diags[0].message);
    assert_eq!(diags[0].fixes.len(), 1);
    assert!(diags[0].fixes[0].text.contains("lock-rank=TODO"));

    // the scaffolding itself is rejected until a human picks the rank
    let todo = "static QUEUE: Mutex<u8> = Mutex::new(0); // lint: lock-rank=TODO\n";
    let diags = lint_one("crates/serve/src/fixture.rs", todo);
    assert_only("L6", &diags);
    assert!(diags[0].message.contains("placeholder"), "{}", diags[0].message);
    assert!(diags[0].fixes.is_empty(), "the TODO placeholder has no mechanical fix");

    // a declared rank is clean; a conflicting redeclaration is not
    let clean = "static QUEUE: Mutex<u8> = Mutex::new(0); // lint: lock-rank=10\n";
    assert!(lint_one("crates/serve/src/fixture.rs", clean).is_empty());
    let conflict = "static QUEUE: Mutex<u8> = Mutex::new(0); // lint: lock-rank=10\n\
                    struct S {\n    queue: Mutex<u8>, // lint: lock-rank=20\n}\n";
    let diags = lint_one("crates/serve/src/fixture.rs", conflict);
    assert_only("L6", &diags);
    assert!(diags[0].message.contains("conflicting"), "{}", diags[0].message);
}

#[test]
fn l6_fires_on_inverted_acquisition_order() {
    let bad = r#"
struct S {
    low: Mutex<u8>, // lint: lock-rank=10
    high: Mutex<u8>, // lint: lock-rank=20
}
impl S {
    fn bad(&self) {
        let g2 = self.high.lock();
        let g1 = self.low.lock();
        drop(g1);
        drop(g2);
    }
}
"#;
    let diags = lint_one("crates/serve/src/fixture.rs", bad);
    assert_only("L6", &diags);
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert!(diags[0].message.contains("lock order violation"), "{}", diags[0].message);

    // the same pair taken in increasing rank order is clean …
    let clean = r#"
struct S {
    low: Mutex<u8>, // lint: lock-rank=10
    high: Mutex<u8>, // lint: lock-rank=20
}
impl S {
    fn good(&self) {
        let g1 = self.low.lock();
        let g2 = self.high.lock();
        drop(g2);
        drop(g1);
    }
}
"#;
    assert!(lint_one("crates/serve/src/fixture.rs", clean).is_empty());

    // … and so is re-acquiring after an explicit drop (no overlap)
    let sequential = r#"
struct S {
    low: Mutex<u8>, // lint: lock-rank=10
    high: Mutex<u8>, // lint: lock-rank=20
}
impl S {
    fn good(&self) {
        let g2 = self.high.lock();
        drop(g2);
        let g1 = self.low.lock();
        drop(g1);
    }
}
"#;
    assert!(lint_one("crates/serve/src/fixture.rs", sequential).is_empty());
}

#[test]
fn l6_fires_on_blocking_calls_under_a_held_guard() {
    let bad = r#"
struct S {
    state: Mutex<u8>, // lint: lock-rank=10
}
impl S {
    fn bad(&self, tx: &Sender<u8>) {
        let g = self.state.lock();
        tx.send(1);
        drop(g);
    }
}
"#;
    let diags = lint_one("crates/serve/src/fixture.rs", bad);
    assert_only("L6", &diags);
    assert!(diags[0].message.contains("blocking"), "{}", diags[0].message);

    // blocking through the guarded resource itself is the point of
    // holding the guard; dropping first is the other sanctioned shape
    let clean = r#"
struct S {
    state: Mutex<u8>, // lint: lock-rank=10
    writer: Mutex<W>, // lint: lock-rank=20
}
impl S {
    fn through_guard(&self) {
        let w = self.writer.lock();
        w.write_all(b"x");
    }
    fn drop_first(&self, tx: &Sender<u8>) {
        let g = self.state.lock();
        drop(g);
        tx.send(1);
    }
    fn scope_first(&self, tx: &Sender<u8>) {
        {
            let g = self.state.lock();
            g.checked_add(1);
        }
        tx.send(1);
    }
}
"#;
    assert!(lint_one("crates/serve/src/fixture.rs", clean).is_empty());
}

#[test]
fn l6_sees_one_level_callee_acquisitions() {
    // f holds rank 20 and calls g, which acquires rank 10 — invisible
    // to a per-fn scan, caught by the one-level call expansion
    let bad = r#"
static LOW: Mutex<u8> = Mutex::new(0); // lint: lock-rank=10
static HIGH: Mutex<u8> = Mutex::new(0); // lint: lock-rank=20
fn g() {
    let l = low.lock();
    drop(l);
}
fn f() {
    let h = high.lock();
    g();
    drop(h);
}
"#;
    let diags = lint_one("crates/serve/src/fixture.rs", bad);
    assert_only("L6", &diags);
    assert!(diags[0].message.contains("call to `g`"), "{}", diags[0].message);
}

#[test]
fn l7_fires_outside_the_poison_helper_and_exempts_it() {
    let bad = r#"
struct S {
    m: Mutex<u8>, // lint: lock-rank=10
}
impl S {
    fn bad(&self) -> u8 {
        *self.m.lock().unwrap()
    }
}
"#;
    let diags = lint_one("crates/obs/src/fixture.rs", bad);
    assert_only("L7", &diags);
    assert!(diags[0].message.contains("lock_unpoisoned"), "{}", diags[0].message);

    // the crate's allowlisted helper is the one audited recovery site;
    // tests keep unwrap freedom
    let clean = r#"
struct S {
    m: Mutex<u8>, // lint: lock-rank=10
}
fn lock_unpoisoned(m: &Mutex<u8>) -> MutexGuard<'_, u8> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let _ = M.lock().unwrap();
    }
}
"#;
    assert!(lint_one("crates/obs/src/fixture.rs", clean).is_empty());

    // a different crate's helper name does not transfer
    let wrong_helper = "fn lock_or_recover(m: &Mutex<u8>) -> u8 {\n    *m.lock().unwrap()\n}\n";
    let diags = lint_one("crates/obs/src/fixture.rs", wrong_helper);
    assert_only("L7", &diags);
}

#[test]
fn l8_fires_past_the_setup_prefix_and_honors_hot_allow() {
    let bad = r#"
// lint: hot
fn step(n: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(n);
    // lint: hot-setup-end
    let label = format!("n={n}");
    out.push(label.len() as u8);
    out
}
"#;
    let diags = lint_one("crates/graph/src/fixture.rs", bad);
    assert_only("L8", &diags);
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert!(diags[0].message.contains("format!"), "{}", diags[0].message);

    // allocations in the setup prefix are the sanctioned shape, the
    // justified escape hatch silences one line, and un-annotated fns
    // are out of scope entirely
    let clean = r#"
// lint: hot
fn step(n: usize, scratch: &mut Vec<u8>) {
    let mut tmp = Vec::with_capacity(n);
    // lint: hot-setup-end
    scratch.extend_from_slice(&tmp);
    let label = format!("n={n}"); // lint: hot-allow(cold error path, taken once per run)
    scratch.push(label.len() as u8);
}
fn cold(n: usize) -> String {
    format!("n={n}")
}
"#;
    assert!(lint_one("crates/graph/src/fixture.rs", clean).is_empty());

    // an empty hot-allow reason is its own violation
    let empty = r#"
// lint: hot
fn step(n: usize) -> u8 {
    // lint: hot-setup-end
    let label = format!("n={n}"); // lint: hot-allow()
    label.len() as u8
}
"#;
    let diags = lint_one("crates/graph/src/fixture.rs", empty);
    assert_only("L8", &diags);
    assert!(diags[0].message.contains("without a reason"), "{}", diags[0].message);
}

#[test]
fn l3_fixes_hoist_the_literal_to_a_const() {
    let src = "pub fn f() {\n    obs::counter(\"lint_fixture/hot\").inc();\n}\n";
    let diags = lint_one("crates/graph/src/fixture.rs", src);
    assert_only("L3", &diags);
    let mut edits: Vec<&locap_lint::FixEdit> = diags.iter().flat_map(|d| &d.fixes).collect();
    assert!(!edits.is_empty(), "the inline-name diagnostic proposes a hoist");
    edits.sort_by_key(|e| e.start);
    let mut fixed = src.to_string();
    for e in edits.iter().rev() {
        fixed.replace_range(e.start..e.end, &e.text);
    }
    assert!(fixed.contains("const LINT_FIXTURE_HOT: &str = \"lint_fixture/hot\";"), "{fixed}");
    assert!(fixed.contains("obs::counter(LINT_FIXTURE_HOT)"), "{fixed}");
    assert!(
        lint_one("crates/graph/src/fixture.rs", &fixed).is_empty(),
        "the fixed tree re-lints clean:\n{fixed}"
    );
}

#[test]
fn diagnostics_json_round_trips_through_the_obs_parser() {
    let diags = lint_one("crates/core/src/fixture.rs", "pub fn f(v: &[u8]) -> u8 { v[0] }\n");
    let summary = Summary {
        files: 1,
        diagnostics: diags.len() as u64,
        baselined: 0,
        new: diags.len() as u64,
        stale: 0,
    };
    let text = locap_lint::diag::to_json(&summary, &diags);
    let doc = Json::parse(&text).expect("document parses with the in-repo parser");
    validate_lint_schema(&doc).expect("document is schema-valid");
    let rows = doc.get("diagnostics").and_then(Json::as_array).expect("rows");
    assert_eq!(rows.len(), diags.len());
    assert_eq!(rows[0].get("rule").and_then(Json::as_str), Some("L1"));
}

/// A throwaway one-crate workspace for driving the real binary.
struct TempWorkspace {
    root: std::path::PathBuf,
}

impl TempWorkspace {
    fn new(tag: &str, files: &[(&str, &str)]) -> TempWorkspace {
        let root = std::env::temp_dir().join(format!("locap-lint-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        for (rel, text) in files {
            let path = root.join(rel);
            std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
            std::fs::write(&path, text).expect("write fixture");
        }
        TempWorkspace { root }
    }

    fn read(&self, rel: &str) -> String {
        std::fs::read_to_string(self.root.join(rel)).expect("read fixture")
    }

    fn write(&self, rel: &str, text: &str) {
        std::fs::write(self.root.join(rel), text).expect("write fixture");
    }

    /// Runs the locap-lint binary with `args` against this workspace.
    fn lint(&self, args: &[&str]) -> std::process::Output {
        std::process::Command::new(env!("CARGO_BIN_EXE_locap-lint"))
            .args(args)
            .args(["--root", self.root.to_str().expect("utf8 root")])
            .env_remove("GITHUB_STEP_SUMMARY")
            .output()
            .expect("binary runs")
    }
}

impl Drop for TempWorkspace {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn fix_is_idempotent_and_the_todo_scaffolding_is_rejected() {
    let ws = TempWorkspace::new(
        "fix",
        &[
            ("crates/demo/src/lib.rs", "//! Demo.\n\npub fn f() {}\n"),
            ("crates/demo/src/locks.rs", "static QUEUE: Mutex<u8> = Mutex::new(0);\n"),
        ],
    );
    let baseline = ws.root.join("lint_baseline.json");
    let b = baseline.to_str().expect("utf8");

    // first --fix run: inserts the missing forbid and the lock-rank=TODO
    // scaffolding — which the check then rejects until a human ranks it
    let out = ws.lint(&["check", "--fix", "--baseline", b]);
    assert!(!out.status.success(), "the TODO placeholder must fail the gate");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("applied 2 fix edit(s) across 2 file(s)"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("L6"), "{stderr}");
    assert!(ws.read("crates/demo/src/lib.rs").contains("#![forbid(unsafe_code)]"));
    let locks = ws.read("crates/demo/src/locks.rs");
    assert!(locks.contains("// lint: lock-rank=TODO"), "{locks}");

    // a second --fix run proposes nothing: the fix is idempotent
    let before = (ws.read("crates/demo/src/lib.rs"), ws.read("crates/demo/src/locks.rs"));
    let out = ws.lint(&["check", "--fix", "--baseline", b]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("applied 0 fix edit(s) across 0 file(s)"), "{stdout}");
    assert_eq!(before.0, ws.read("crates/demo/src/lib.rs"));
    assert_eq!(before.1, ws.read("crates/demo/src/locks.rs"));

    // a human picks the rank; the fixed tree re-lints clean
    ws.write("crates/demo/src/locks.rs", &before.1.replace("lock-rank=TODO", "lock-rank=10"));
    let out = ws.lint(&["check", "--baseline", b]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("ratchet gate passed"));
}

#[test]
fn validate_exits_2_on_baseline_entries_whose_file_is_gone() {
    let ws = TempWorkspace::new(
        "validate",
        &[("crates/demo/src/lib.rs", "#![forbid(unsafe_code)]\npub fn f() {}\n")],
    );
    let stale = "{\n  \"schema\": 2,\n  \"entries\": [\n    {\"rule\":\"L1\",\"file\":\"crates/demo/src/gone.rs\",\"count\":1,\"reason\":\"r\"}\n  ],\n  \"test_entries\": []\n}\n";
    ws.write("stale.json", stale);
    let out = ws.lint(&["validate", ws.root.join("stale.json").to_str().expect("utf8")]);
    assert_eq!(out.status.code(), Some(2), "stale entries are a distinct failure class");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("gone.rs") && stderr.contains("no longer exists"), "{stderr}");

    // with the file present the same document validates
    let ok = stale.replace("gone.rs", "lib.rs");
    ws.write("ok.json", &ok);
    let out = ws.lint(&["validate", ws.root.join("ok.json").to_str().expect("utf8")]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn check_appends_the_baseline_delta_to_the_step_summary() {
    let ws = TempWorkspace::new(
        "summary",
        &[("crates/demo/src/lib.rs", "//! Demo.\n\npub fn f() {}\n")],
    );
    let summary_path = ws.root.join("step_summary.md");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_locap-lint"))
        .args(["check", "--baseline", ws.root.join("none.json").to_str().expect("utf8")])
        .args(["--root", ws.root.to_str().expect("utf8 root")])
        .env("GITHUB_STEP_SUMMARY", &summary_path)
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "the missing forbid is a new violation");
    let md = std::fs::read_to_string(&summary_path).expect("summary written");
    assert!(md.contains("## locap-lint"), "{md}");
    assert!(md.contains("| L4 | forbid-unsafe | 1 |"), "{md}");
    assert!(md.contains("### Baseline delta"), "{md}");
    assert!(md.contains("new file — fix it"), "{md}");
    assert!(md.contains("gate **FAILED**"), "{md}");
}

/// The real workspace, under the committed baseline, passes ratchet mode
/// — this is the same gate CI runs, locked down as a plain test.
#[test]
fn workspace_is_clean_under_the_committed_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let baseline = Baseline::load(&root.join("lint_baseline.json")).expect("baseline loads");
    assert!(!baseline.entries.is_empty(), "the committed baseline records the L1 debt");
    let run = locap_lint::run_check(&root, &Config::locap(), &baseline).expect("scan");
    assert!(run.passed(), "ratchet failures: {:#?}", run.failures);

    // the clock and unsafe contracts hold outright: no grandfathered debt
    for e in &baseline.entries {
        assert!(
            e.rule != "L2" && e.rule != "L4",
            "{} must pass with zero baseline entries, found one for {}",
            e.rule,
            e.file
        );
        assert!(
            !e.reason.trim().is_empty() && !e.reason.starts_with("TODO"),
            "baseline entry {} {} lacks a real reason",
            e.rule,
            e.file
        );
    }
}
