//! PO-checkability — the formal side of "simple PO-checkable graph
//! problem" (paper §1.6).
//!
//! A problem Π is PO-checkable when there is a local PO algorithm `A` that
//! *recognises* feasible solutions: `A(G, X, v) = 1` for all `v` iff `X`
//! is feasible. The verifier is anonymous and constant-radius: it sees the
//! radius-`r` ball with the solution bits as local inputs — never
//! identifiers or orders.
//!
//! [`DecoratedView`] is the exact information such a verifier consumes: a
//! view tree in which every walk also carries the solution bits of its
//! endpoint (membership bit for vertex problems; per-letter incidence bits
//! for edge problems). [`VertexVerifier`]/[`EdgeVerifier`] are verifier
//! traits over it, and [`verify_vertex`]/[`verify_edge`] run them over an
//! instance. The six verifiers for the paper's Example 1.1 problems live
//! in [`verifiers`]; integration tests check `all accept ⟺ feasible`
//! against `locap-problems` ground truth.

use std::collections::BTreeSet;

use locap_graph::{Edge, Graph, LDigraph, NodeId, PoGraph};
use locap_lifts::Letter;

/// A node of a solution-decorated view: the walk structure of the plain
/// view plus the solution bits visible at each walk's endpoint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DecoratedNode {
    /// Membership bit of the endpoint (vertex problems), if supplied.
    pub vertex_bit: Option<bool>,
    /// Per-incident-letter selection bits of the endpoint (edge problems),
    /// sorted by letter, if supplied.
    pub edge_bits: Option<Vec<(Letter, bool)>>,
    /// Children, sorted by letter.
    pub children: Vec<(Letter, DecoratedNode)>,
}

/// A solution-decorated radius-`r` view.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DecoratedView {
    /// The decorated root.
    pub root: DecoratedNode,
    /// Truncation radius.
    pub radius: usize,
}

fn decorate(
    d: &LDigraph,
    node: NodeId,
    last: Option<Letter>,
    depth: usize,
    vertex_bits: Option<&[bool]>,
    edge_sel: Option<&dyn Fn(NodeId, Letter) -> bool>,
) -> DecoratedNode {
    let vertex_bit = vertex_bits.map(|b| b[node]);
    let edge_bits = edge_sel.map(|sel| {
        let mut bits = Vec::new();
        for label in 0..d.alphabet_size() {
            if d.out_neighbor(node, label).is_some() {
                bits.push((Letter::pos(label), sel(node, Letter::pos(label))));
            }
            if d.in_neighbor(node, label).is_some() {
                bits.push((Letter::neg(label), sel(node, Letter::neg(label))));
            }
        }
        bits
    });
    let mut children = Vec::new();
    if depth > 0 {
        for label in 0..d.alphabet_size() {
            if let Some(u) = d.out_neighbor(node, label) {
                let letter = Letter::pos(label);
                if last != Some(letter.inv()) {
                    children.push((
                        letter,
                        decorate(d, u, Some(letter), depth - 1, vertex_bits, edge_sel),
                    ));
                }
            }
            if let Some(u) = d.in_neighbor(node, label) {
                let letter = Letter::neg(label);
                if last != Some(letter.inv()) {
                    children.push((
                        letter,
                        decorate(d, u, Some(letter), depth - 1, vertex_bits, edge_sel),
                    ));
                }
            }
        }
        children.sort_by_key(|&(l, _)| l);
    }
    DecoratedNode { vertex_bit, edge_bits, children }
}

/// Builds the decorated view of `v` for a vertex-subset solution.
pub fn decorated_vertex_view(
    d: &LDigraph,
    solution: &[bool],
    v: NodeId,
    r: usize,
) -> DecoratedView {
    DecoratedView { root: decorate(d, v, None, r, Some(solution), None), radius: r }
}

/// Builds the decorated view of `v` for an edge-subset solution
/// (`selected(u, letter)` = whether `u`'s incident edge along `letter`
/// belongs to the solution).
pub fn decorated_edge_view(
    d: &LDigraph,
    selected: &dyn Fn(NodeId, Letter) -> bool,
    v: NodeId,
    r: usize,
) -> DecoratedView {
    DecoratedView { root: decorate(d, v, None, r, None, Some(selected)), radius: r }
}

/// An anonymous local verifier for vertex-subset problems.
pub trait VertexVerifier {
    /// The verifier's radius.
    fn radius(&self) -> usize;
    /// Whether the centre node accepts.
    fn accept(&self, view: &DecoratedView) -> bool;
}

/// An anonymous local verifier for edge-subset problems.
pub trait EdgeVerifier {
    /// The verifier's radius.
    fn radius(&self) -> usize;
    /// Whether the centre node accepts.
    fn accept(&self, view: &DecoratedView) -> bool;
}

/// Runs a vertex verifier at every node; returns whether all accept.
pub fn verify_vertex<V: VertexVerifier>(
    g: &Graph,
    solution: &BTreeSet<NodeId>,
    verifier: &V,
) -> bool {
    let d = PoGraph::canonical(g).digraph().clone();
    let bits: Vec<bool> = g.nodes().map(|v| solution.contains(&v)).collect();
    (0..d.node_count())
        .all(|v| verifier.accept(&decorated_vertex_view(&d, &bits, v, verifier.radius())))
}

/// Runs an edge verifier at every node; returns whether all accept.
pub fn verify_edge<V: EdgeVerifier>(g: &Graph, solution: &BTreeSet<Edge>, verifier: &V) -> bool {
    let po = PoGraph::canonical(g);
    let d = po.digraph().clone();
    let selected = move |u: NodeId, letter: Letter| -> bool {
        let target = if letter.inverse {
            d.in_neighbor(u, letter.label)
        } else {
            d.out_neighbor(u, letter.label)
        };
        target.is_some_and(|t| solution.contains(&Edge::new(u, t)))
    };
    let d2 = po.digraph();
    (0..d2.node_count())
        .all(|v| verifier.accept(&decorated_edge_view(d2, &selected, v, verifier.radius())))
}

/// The radius-1 verifiers for the paper's Example 1.1 problems.
pub mod verifiers {
    use super::*;

    /// Helper: the solution bit of a depth-1 child's endpoint.
    fn child_vertex_bits(view: &DecoratedView) -> Vec<bool> {
        view.root
            .children
            .iter()
            .map(|(_, c)| c.vertex_bit.expect("vertex-decorated view"))
            .collect()
    }

    /// Whether the endpoint of a decorated node is *touched* (has any
    /// selected incident edge).
    fn touched(n: &DecoratedNode) -> bool {
        n.edge_bits.as_ref().expect("edge-decorated view").iter().any(|&(_, b)| b)
    }

    /// Vertex cover: every incident edge covered.
    #[derive(Debug, Clone, Copy)]
    pub struct VertexCoverVerifier;
    impl VertexVerifier for VertexCoverVerifier {
        fn radius(&self) -> usize {
            1
        }
        fn accept(&self, view: &DecoratedView) -> bool {
            let me = view.root.vertex_bit.expect("vertex-decorated view");
            me || child_vertex_bits(view).iter().all(|&b| b)
        }
    }

    /// Independent set: not selected together with a neighbour.
    #[derive(Debug, Clone, Copy)]
    pub struct IndependentSetVerifier;
    impl VertexVerifier for IndependentSetVerifier {
        fn radius(&self) -> usize {
            1
        }
        fn accept(&self, view: &DecoratedView) -> bool {
            let me = view.root.vertex_bit.expect("vertex-decorated view");
            !me || child_vertex_bits(view).iter().all(|&b| !b)
        }
    }

    /// Dominating set: the centre is dominated.
    #[derive(Debug, Clone, Copy)]
    pub struct DominatingSetVerifier;
    impl VertexVerifier for DominatingSetVerifier {
        fn radius(&self) -> usize {
            1
        }
        fn accept(&self, view: &DecoratedView) -> bool {
            let me = view.root.vertex_bit.expect("vertex-decorated view");
            me || child_vertex_bits(view).iter().any(|&b| b)
        }
    }

    /// Matching: at most one selected incident edge, and selections agree
    /// across each edge (both endpoints claim it or neither does — the
    /// encoding consistency condition of §2.1).
    #[derive(Debug, Clone, Copy)]
    pub struct MatchingVerifier;
    impl EdgeVerifier for MatchingVerifier {
        fn radius(&self) -> usize {
            1
        }
        fn accept(&self, view: &DecoratedView) -> bool {
            let bits = view.root.edge_bits.as_ref().expect("edge-decorated view");
            bits.iter().filter(|&&(_, b)| b).count() <= 1
        }
    }

    /// Edge cover: some incident edge selected.
    #[derive(Debug, Clone, Copy)]
    pub struct EdgeCoverVerifier;
    impl EdgeVerifier for EdgeCoverVerifier {
        fn radius(&self) -> usize {
            1
        }
        fn accept(&self, view: &DecoratedView) -> bool {
            touched(&view.root)
        }
    }

    /// Edge dominating set: every incident edge `{v, u}` has `v` or `u`
    /// touched — `u`'s bits are visible at radius 1.
    #[derive(Debug, Clone, Copy)]
    pub struct EdsVerifier;
    impl EdgeVerifier for EdsVerifier {
        fn radius(&self) -> usize {
            1
        }
        fn accept(&self, view: &DecoratedView) -> bool {
            let me = touched(&view.root);
            me || view.root.children.iter().all(|(_, c)| touched(c))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::verifiers::*;
    use super::*;
    use locap_graph::gen;

    #[test]
    fn vertex_cover_verifier_matches_feasibility() {
        let g = gen::petersen();
        // feasible cover: accept everywhere
        let cover: BTreeSet<usize> = (0..10).filter(|v| v % 2 == 0 || *v < 5).collect();
        let feasible = g.edges().all(|e| cover.contains(&e.u) || cover.contains(&e.v));
        assert_eq!(verify_vertex(&g, &cover, &VertexCoverVerifier), feasible);
        // empty set: reject
        assert!(!verify_vertex(&g, &BTreeSet::new(), &VertexCoverVerifier));
    }

    #[test]
    fn independent_set_verifier() {
        let g = gen::cycle(6);
        let good: BTreeSet<usize> = [0, 2, 4].into_iter().collect();
        assert!(verify_vertex(&g, &good, &IndependentSetVerifier));
        let bad: BTreeSet<usize> = [0, 1].into_iter().collect();
        assert!(!verify_vertex(&g, &bad, &IndependentSetVerifier));
        assert!(verify_vertex(&g, &BTreeSet::new(), &IndependentSetVerifier));
    }

    #[test]
    fn dominating_set_verifier() {
        let g = gen::star(4);
        let centre: BTreeSet<usize> = [0].into_iter().collect();
        assert!(verify_vertex(&g, &centre, &DominatingSetVerifier));
        let leaf: BTreeSet<usize> = [1].into_iter().collect();
        assert!(!verify_vertex(&g, &leaf, &DominatingSetVerifier), "leaf 2 undominated");
    }

    #[test]
    fn matching_verifier() {
        let g = gen::path(4);
        let m: BTreeSet<Edge> = [Edge::new(0, 1), Edge::new(2, 3)].into_iter().collect();
        assert!(verify_edge(&g, &m, &MatchingVerifier));
        let bad: BTreeSet<Edge> = [Edge::new(0, 1), Edge::new(1, 2)].into_iter().collect();
        assert!(!verify_edge(&g, &bad, &MatchingVerifier));
    }

    #[test]
    fn edge_cover_and_eds_verifiers() {
        let g = gen::cycle(6);
        let all: BTreeSet<Edge> = g.edges().collect();
        assert!(verify_edge(&g, &all, &EdgeCoverVerifier));
        assert!(verify_edge(&g, &all, &EdsVerifier));
        let one: BTreeSet<Edge> = [Edge::new(0, 1)].into_iter().collect();
        assert!(!verify_edge(&g, &one, &EdgeCoverVerifier), "node 3 uncovered");
        assert!(!verify_edge(&g, &one, &EdsVerifier), "edge 3-4 undominated");
        // a valid EDS that is not an edge cover
        let eds: BTreeSet<Edge> = [Edge::new(0, 1), Edge::new(3, 4)].into_iter().collect();
        assert!(verify_edge(&g, &eds, &EdsVerifier));
        assert!(!verify_edge(&g, &eds, &EdgeCoverVerifier));
    }

    #[test]
    fn decorated_views_are_anonymous() {
        // two nodes of a symmetric instance with symmetric solutions have
        // identical decorated views
        let g = gen::cycle(5);
        let d = PoGraph::canonical(&g).digraph().clone();
        let bits = vec![true; 5];
        let v0 = decorated_vertex_view(&d, &bits, 0, 1);
        let v0b = decorated_vertex_view(&d, &bits, 0, 1);
        assert_eq!(v0, v0b);
    }
}
