//! Every experiment binary must, under `OBS_JSON=1`, print exactly one
//! line of schema-valid JSON (and nothing else) on stdout — that is the
//! contract the CI smoke job's metrics artifact depends on.

use locap_obs::json::Json;

fn check_binary(name: &str, exe: &str) {
    let out = std::process::Command::new(exe)
        .env("OBS_JSON", "1")
        .output()
        .unwrap_or_else(|e| panic!("{name}: spawn failed: {e}"));
    assert!(out.status.success(), "{name}: exit {}", out.status);
    let stdout = String::from_utf8(out.stdout).unwrap_or_else(|e| panic!("{name}: utf8: {e}"));
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 1, "{name}: expected exactly one stdout line, got {}", lines.len());
    let doc = Json::parse(lines[0]).unwrap_or_else(|e| panic!("{name}: JSON parse: {e}"));
    locap_obs::validate_bench_schema(&doc)
        .unwrap_or_else(|e| panic!("{name}: schema validation: {e}"));
    assert_eq!(doc.get("source").and_then(Json::as_str), Some(name), "{name}: source tag mismatch");
    // each binary times its body: a `total` span row must be present
    let results = doc.get("results").and_then(Json::as_array).expect("results array");
    assert!(
        results.iter().any(|r| r.get("name").and_then(Json::as_str) == Some("total")),
        "{name}: missing the total span row"
    );
}

macro_rules! obs_json_test {
    ($test:ident, $bin:literal, $exe:expr) => {
        #[test]
        fn $test() {
            check_binary($bin, $exe);
        }
    };
}

obs_json_test!(e01, "e01_models", env!("CARGO_BIN_EXE_e01_models"));
obs_json_test!(e02, "e02_separation", env!("CARGO_BIN_EXE_e02_separation"));
obs_json_test!(e03, "e03_lifts", env!("CARGO_BIN_EXE_e03_lifts"));
obs_json_test!(e04, "e04_views", env!("CARGO_BIN_EXE_e04_views"));
obs_json_test!(e05, "e05_complete_tree", env!("CARGO_BIN_EXE_e05_complete_tree"));
obs_json_test!(e06, "e06_toroidal", env!("CARGO_BIN_EXE_e06_toroidal"));
obs_json_test!(e07, "e07_homogeneous", env!("CARGO_BIN_EXE_e07_homogeneous"));
obs_json_test!(e08, "e08_homlift", env!("CARGO_BIN_EXE_e08_homlift"));
obs_json_test!(e09, "e09_oi_to_po", env!("CARGO_BIN_EXE_e09_oi_to_po"));
obs_json_test!(e10, "e10_ramsey", env!("CARGO_BIN_EXE_e10_ramsey"));
obs_json_test!(e11, "e11_eds", env!("CARGO_BIN_EXE_e11_eds"));
obs_json_test!(e12, "e12_claims_table", env!("CARGO_BIN_EXE_e12_claims_table"));
obs_json_test!(e13, "e13_growth", env!("CARGO_BIN_EXE_e13_growth"));
obs_json_test!(e14, "e14_po_vs_pn", env!("CARGO_BIN_EXE_e14_po_vs_pn"));

/// `OBS_JSON=1` and `OBS_TRACE` compose: the run still prints exactly one
/// schema-valid metrics line on stdout *and* writes a well-formed trace
/// pair (Chrome JSON + collapsed stacks) to the requested path.
#[test]
fn obs_json_and_obs_trace_compose() {
    let dir = std::env::temp_dir().join(format!("locap_compose_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace_path = dir.join("e04.trace.json");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_e04_views"))
        .env("OBS_JSON", "1")
        .env("OBS_TRACE", &trace_path)
        .output()
        .expect("spawn e04_views");
    assert!(out.status.success(), "exit {}", out.status);

    // the metrics contract is unchanged: one schema-valid stdout line
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 1, "expected exactly one stdout line, got {}:\n{stdout}", lines.len());
    let doc = Json::parse(lines[0]).expect("metrics JSON parses");
    locap_obs::validate_bench_schema(&doc).expect("metrics schema valid");

    // and the trace pair exists and is well-formed
    let trace = locap_bench::trace_report::load(trace_path.to_str().expect("utf8 path"))
        .expect("trace file parses as Chrome trace JSON");
    assert!(!trace.spans.is_empty(), "trace records spans");
    assert!(trace.spans.iter().any(|s| s.path == "total"), "total span traced");
    let folded = std::fs::read_to_string(format!("{}.folded", trace_path.display()))
        .expect("collapsed-stack file written");
    assert!(folded.lines().any(|l| l.starts_with("total")), "folded stacks non-empty: {folded}");

    // trace span totals agree with the snapshot's span rows (same run)
    let agg = locap_bench::trace_report::aggregate(&trace);
    for row in doc.get("results").and_then(Json::as_array).expect("results") {
        let name = row.get("name").and_then(Json::as_str).expect("name");
        let samples = row.get("samples").and_then(Json::as_u64).expect("samples");
        let total_ns = row.get("total_ns").and_then(Json::as_u64).expect("total_ns");
        let stats = agg.get(name).unwrap_or_else(|| panic!("{name} missing from trace"));
        assert_eq!(stats.count, samples, "{name}: span count");
        assert_eq!(stats.total_ns, total_ns, "{name}: span total");
    }

    std::fs::remove_dir_all(&dir).ok();
}
