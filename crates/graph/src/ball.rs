//! BFS balls, distances, girth, connectivity — the metric structure used to
//! extract radius-`r` neighbourhoods τ(G, v) (paper §2.2).

use std::collections::VecDeque;

use crate::{Graph, NodeBitset, NodeId};

impl Graph {
    /// Distances from `src` up to `radius` (`None` beyond the radius or
    /// unreachable). `radius = usize::MAX` computes full BFS distances.
    pub fn distances_from(&self, src: NodeId, radius: usize) -> Vec<Option<usize>> {
        let mut dist = vec![None; self.node_count()];
        let mut q = VecDeque::new();
        dist[src] = Some(0);
        q.push_back(src);
        while let Some(v) = q.pop_front() {
            let d = dist[v].expect("queued nodes have distances");
            if d == radius {
                continue;
            }
            for &u in self.neighbors(v) {
                if dist[u].is_none() {
                    dist[u] = Some(d + 1);
                    q.push_back(u);
                }
            }
        }
        dist
    }

    /// The radius-`r` ball `B_G(v, r)` as a sorted vertex list (paper §2.2).
    ///
    /// ```
    /// use locap_graph::gen;
    /// let g = gen::cycle(8);
    /// assert_eq!(g.ball(0, 2), vec![0, 1, 2, 6, 7]);
    /// ```
    pub fn ball(&self, v: NodeId, r: usize) -> Vec<NodeId> {
        let dist = self.distances_from(v, r);
        (0..self.node_count()).filter(|&u| dist[u].is_some()).collect()
    }

    /// Exact distance between two nodes, if connected.
    pub fn distance(&self, u: NodeId, v: NodeId) -> Option<usize> {
        self.distances_from(u, usize::MAX)[v]
    }

    /// The radius-`r` ball as a sorted vertex list, computed with a
    /// truncated BFS over a [`NodeBitset`] membership set — touched-word
    /// bookkeeping keeps the work proportional to the ball, not to `n`.
    pub fn ball_local(&self, v: NodeId, r: usize) -> Vec<NodeId> {
        let mut seen = NodeBitset::new(self.node_count());
        let mut q: VecDeque<(NodeId, usize)> = VecDeque::new();
        let mut out = vec![v];
        seen.insert(v);
        q.push_back((v, 0));
        while let Some((x, d)) = q.pop_front() {
            if d == r {
                continue;
            }
            for &u in self.neighbors(x) {
                if seen.insert(u) {
                    out.push(u);
                    q.push_back((u, d + 1));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Whether some cycle of length ≤ `bound` passes near `root`
    /// (detected by a single truncated BFS). For **vertex-transitive**
    /// graphs, `!cycle_near_root(root, bound)` for any one root implies
    /// `girth > bound`; this is the `O(|ball|)` girth check used on large
    /// Cayley graphs.
    pub fn cycle_near_root(&self, root: NodeId, bound: usize) -> bool {
        let half = bound / 2 + 1;
        let n = self.node_count();
        let mut dist = vec![u32::MAX; n];
        let mut parent = vec![u32::MAX; n];
        let mut q = VecDeque::new();
        dist[root] = 0;
        q.push_back(root);
        while let Some(v) = q.pop_front() {
            let dv = dist[v] as usize;
            if dv >= half {
                continue;
            }
            for &u in self.neighbors(v) {
                if dist[u] == u32::MAX {
                    dist[u] = (dv + 1) as u32;
                    parent[u] = v as u32;
                    q.push_back(u);
                } else if parent[v] != u as u32 && dv + (dist[u] as usize) < bound {
                    return true;
                }
            }
        }
        false
    }

    /// Whether the graph is connected (the empty graph counts as connected).
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n == 0 {
            return true;
        }
        self.distances_from(0, usize::MAX).iter().all(Option::is_some)
    }

    /// Connected components as sorted vertex lists, ordered by smallest node.
    pub fn components(&self) -> Vec<Vec<NodeId>> {
        let n = self.node_count();
        let mut seen = vec![false; n];
        let mut out = Vec::new();
        for s in 0..n {
            if seen[s] {
                continue;
            }
            let mut comp = Vec::new();
            let mut q = VecDeque::new();
            seen[s] = true;
            q.push_back(s);
            while let Some(v) = q.pop_front() {
                comp.push(v);
                for &u in self.neighbors(v) {
                    if !seen[u] {
                        seen[u] = true;
                        q.push_back(u);
                    }
                }
            }
            comp.sort_unstable();
            out.push(comp);
        }
        out
    }

    /// The girth (length of a shortest cycle), or `None` for forests.
    ///
    /// Runs a BFS from every vertex and detects the first non-tree edge;
    /// exact for simple graphs. `O(n · m)`.
    ///
    /// ```
    /// use locap_graph::gen;
    /// assert_eq!(gen::cycle(9).girth(), Some(9));
    /// assert_eq!(gen::complete(4).girth(), Some(3));
    /// assert_eq!(gen::path(9).girth(), None);
    /// ```
    pub fn girth(&self) -> Option<usize> {
        let n = self.node_count();
        let mut best: Option<usize> = None;
        for s in 0..n {
            // BFS from s; a non-tree edge {v, u} (u already visited, u is not
            // v's BFS parent) closes a cycle of length dist[v] + dist[u] + 1
            // through s. The minimum over all roots is exact.
            let mut dist = vec![usize::MAX; n];
            let mut parent = vec![usize::MAX; n];
            let mut q = VecDeque::new();
            dist[s] = 0;
            q.push_back(s);
            while let Some(v) = q.pop_front() {
                if let Some(b) = best {
                    // Cycles through s found from deeper layers cannot be
                    // shorter than 2*dist[v], so we can prune.
                    if 2 * dist[v] >= b {
                        break;
                    }
                }
                for &u in self.neighbors(v) {
                    if dist[u] == usize::MAX {
                        dist[u] = dist[v] + 1;
                        parent[u] = v;
                        q.push_back(u);
                    } else if parent[v] != u {
                        let len = dist[v] + dist[u] + 1;
                        if best.is_none_or(|b| len < b) {
                            best = Some(len);
                        }
                    }
                }
            }
        }
        best
    }

    /// Whether the girth is strictly greater than `g` (vacuously true for
    /// forests). Faster than [`Graph::girth`] when only a bound is needed:
    /// BFS is truncated at depth `g / 2 + 1`.
    pub fn girth_exceeds(&self, g: usize) -> bool {
        let n = self.node_count();
        let half = g / 2 + 1;
        for s in 0..n {
            let mut dist = vec![usize::MAX; n];
            let mut parent = vec![usize::MAX; n];
            let mut q = VecDeque::new();
            dist[s] = 0;
            q.push_back(s);
            while let Some(v) = q.pop_front() {
                if dist[v] >= half {
                    continue;
                }
                for &u in self.neighbors(v) {
                    if dist[u] == usize::MAX {
                        dist[u] = dist[v] + 1;
                        parent[u] = v;
                        q.push_back(u);
                    } else if parent[v] != u && dist[v] + dist[u] < g {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// The diameter of a connected graph; `None` if disconnected or empty.
    pub fn diameter(&self) -> Option<usize> {
        let n = self.node_count();
        if n == 0 {
            return None;
        }
        let mut best = 0usize;
        for s in 0..n {
            let dist = self.distances_from(s, usize::MAX);
            for d in &dist {
                match d {
                    None => return None,
                    Some(x) => best = best.max(*x),
                }
            }
        }
        Some(best)
    }
}

#[cfg(test)]
mod tests {
    use crate::gen;
    use crate::Graph;

    #[test]
    fn distances_and_balls() {
        let g = gen::cycle(10);
        let d = g.distances_from(0, usize::MAX);
        assert_eq!(d[5], Some(5));
        assert_eq!(d[9], Some(1));
        let d2 = g.distances_from(0, 2);
        assert_eq!(d2[2], Some(2));
        assert_eq!(d2[3], None);
        assert_eq!(g.ball(0, 1), vec![0, 1, 9]);
        assert_eq!(g.distance(0, 5), Some(5));
    }

    #[test]
    fn disconnected_distance() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(g.distance(0, 2), None);
        assert!(!g.is_connected());
        assert_eq!(g.components(), vec![vec![0, 1], vec![2, 3]]);
        assert_eq!(g.diameter(), None);
    }

    #[test]
    fn girth_cycles_and_cliques() {
        for n in 3..12 {
            assert_eq!(gen::cycle(n).girth(), Some(n), "cycle C_{n}");
        }
        assert_eq!(gen::complete(3).girth(), Some(3));
        assert_eq!(gen::complete(5).girth(), Some(3));
        assert_eq!(gen::complete_bipartite(2, 2).girth(), Some(4));
        assert_eq!(gen::complete_bipartite(3, 3).girth(), Some(4));
        assert_eq!(gen::path(6).girth(), None);
        assert_eq!(gen::star(5).girth(), None);
        assert_eq!(gen::petersen().girth(), Some(5));
        assert_eq!(gen::hypercube(3).girth(), Some(4));
    }

    #[test]
    fn girth_exceeds_matches_girth() {
        let cases = [gen::cycle(7), gen::complete(5), gen::petersen(), gen::path(5)];
        for g in &cases {
            for bound in 0..12 {
                let expect = match g.girth() {
                    None => true,
                    Some(gi) => gi > bound,
                };
                assert_eq!(g.girth_exceeds(bound), expect, "bound {bound}");
            }
        }
    }

    #[test]
    fn diameter_examples() {
        assert_eq!(gen::cycle(10).diameter(), Some(5));
        assert_eq!(gen::path(5).diameter(), Some(4));
        assert_eq!(gen::complete(6).diameter(), Some(1));
        assert_eq!(gen::petersen().diameter(), Some(2));
    }

    #[test]
    fn ball_local_matches_ball() {
        for g in [gen::cycle(12), gen::petersen(), gen::hypercube(4), gen::grid(4, 5)] {
            for v in [0usize, 3, 7] {
                for r in 0..4 {
                    assert_eq!(g.ball_local(v, r), g.ball(v, r), "v={v}, r={r}");
                }
            }
        }
    }

    #[test]
    fn cycle_near_root_on_transitive_graphs() {
        // On vertex-transitive graphs the one-root check matches girth.
        let cases = [(gen::cycle(9), 9usize), (gen::petersen(), 5), (gen::hypercube(3), 4)];
        for (g, girth) in cases {
            for bound in 0..12 {
                assert_eq!(
                    g.cycle_near_root(0, bound),
                    bound >= girth,
                    "girth {girth}, bound {bound}"
                );
            }
        }
    }

    #[test]
    fn girth_two_triangles_sharing_vertex() {
        // girth must find the 3-cycle even with overlapping cycles
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]).unwrap();
        assert_eq!(g.girth(), Some(3));
    }
}
