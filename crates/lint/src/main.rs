//! The `locap-lint` CLI.
//!
//! ```text
//! locap-lint check [--root DIR] [--baseline FILE] [--json FILE|-] [--update-baseline]
//! locap-lint validate FILE
//! locap-lint rules
//! ```
//!
//! `check` runs the workspace analyzer in ratchet mode: exit 0 when
//! every violation is grandfathered by `lint_baseline.json`, exit 1 on
//! any new violation or any unrecorded paydown. `--update-baseline`
//! rewrites the baseline to the current debt (keeping reasons, flagging
//! new entries with a TODO a human must replace). `validate` checks a
//! diagnostics JSON document against the lint schema with the in-repo
//! parser. `rules` prints the catalogue.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use locap_lint::{diag, Baseline, Config};
use locap_obs as obs;
use locap_obs::json::Json;

/// Scanned-file count gauge name.
const OBS_FILES: &str = "lint/files";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    match strs.split_first() {
        Some((&"check", rest)) => check(rest),
        Some((&"validate", [path])) => validate(path),
        Some((&"rules", [])) => {
            for (id, name, desc) in diag::RULES {
                println!("{id}  {name:<19} {desc}");
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage: locap-lint check [--root DIR] [--baseline FILE] [--json FILE|-] \
                 [--update-baseline]\n       locap-lint validate FILE\n       locap-lint rules"
            );
            ExitCode::from(2)
        }
    }
}

fn default_root() -> PathBuf {
    // the crate lives at <root>/crates/lint, so the workspace root is
    // fixed at compile time — `cargo run -p locap-lint` works from any cwd
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn check(rest: &[&str]) -> ExitCode {
    let mut root = default_root();
    let mut baseline_path: Option<PathBuf> = None;
    let mut json_out: Option<String> = None;
    let mut update = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match *arg {
            "--root" => match it.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage_error("--root needs a directory"),
            },
            "--baseline" => match it.next() {
                Some(v) => baseline_path = Some(PathBuf::from(v)),
                None => return usage_error("--baseline needs a file"),
            },
            "--json" => match it.next() {
                Some(v) => json_out = Some((*v).to_string()),
                None => return usage_error("--json needs a file (or -)"),
            },
            "--update-baseline" => update = true,
            other => return usage_error(&format!("unknown flag {other}")),
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint_baseline.json"));
    let baseline = match Baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("locap-lint: failed to load baseline: {e}");
            return ExitCode::from(2);
        }
    };
    let run = match locap_lint::run_check(&root, &Config::locap(), &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("locap-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    obs::gauge(OBS_FILES).set(run.summary.files as i64);
    for (id, _, _) in diag::RULES {
        let count = run.diagnostics.iter().filter(|d| d.rule == *id).count() as u64;
        obs::counter(&format!("lint/diagnostics/{id}")).add(count);
    }

    if update {
        let updated = baseline.updated(&run.diagnostics);
        let todo = updated.entries.iter().filter(|e| e.reason.starts_with("TODO")).count();
        if let Err(e) = std::fs::write(&baseline_path, updated.render()) {
            eprintln!("locap-lint: failed to write baseline: {e}");
            return ExitCode::from(2);
        }
        println!(
            "locap-lint: wrote {} entr(ies) to {}{}",
            updated.entries.len(),
            baseline_path.display(),
            if todo > 0 {
                format!(" — {todo} new entr(ies) need a reason before `check` passes")
            } else {
                String::new()
            }
        );
        return ExitCode::SUCCESS;
    }

    for d in &run.diagnostics {
        println!("{}", d.render());
    }
    let s = &run.summary;
    println!(
        "locap-lint: {} file(s), {} diagnostic(s) ({} baselined, {} new, {} stale baseline \
         entr(ies))",
        s.files, s.diagnostics, s.baselined, s.new, s.stale
    );
    if let Some(path) = json_out {
        let doc = diag::to_json(s, &run.diagnostics);
        if path == "-" {
            println!("{doc}");
        } else if let Err(e) = std::fs::write(&path, format!("{doc}\n")) {
            eprintln!("locap-lint: failed to write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if run.passed() {
        println!("locap-lint: ratchet gate passed");
        ExitCode::SUCCESS
    } else {
        for f in &run.failures {
            eprintln!("locap-lint: FAIL {f}");
        }
        ExitCode::FAILURE
    }
}

fn validate(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("locap-lint: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let doc = match Json::parse(text.trim()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("locap-lint: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match locap_lint::validate_lint_schema(&doc) {
        Ok(()) => {
            println!("locap-lint: {path}: schema-valid lint diagnostics document");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("locap-lint: {path}: schema violation: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("locap-lint: {msg}");
    ExitCode::from(2)
}
