use std::fmt;

/// Errors from the constructions of the main theorems.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// No generator set of the requested size and girth was found within
    /// the search budget.
    GeneratorSearchFailed {
        /// Number of generators requested.
        k: usize,
        /// Girth bound required (`> 2r + 1`).
        girth_bound: usize,
        /// Human-readable context.
        detail: String,
    },
    /// The requested construction parameters exceed what can be
    /// materialised (group order too large).
    TooLarge {
        /// Description of the blow-up.
        reason: String,
    },
    /// A verification step failed — the constructed object does not have
    /// the property the theorem promises (indicates a bug or bad inputs).
    VerificationFailed {
        /// Which property failed.
        property: String,
    },
    /// Invalid parameters.
    BadParameters {
        /// Description of the defect.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::GeneratorSearchFailed { k, girth_bound, detail } => {
                write!(f, "no {k}-generator set with girth > {girth_bound} found: {detail}")
            }
            CoreError::TooLarge { reason } => write!(f, "construction too large: {reason}"),
            CoreError::VerificationFailed { property } => {
                write!(f, "verification failed: {property}")
            }
            CoreError::BadParameters { reason } => write!(f, "bad parameters: {reason}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = CoreError::GeneratorSearchFailed { k: 2, girth_bound: 5, detail: "x".into() };
        assert!(e.to_string().contains("girth > 5"));
        assert!(CoreError::TooLarge { reason: "6^15".into() }.to_string().contains("6^15"));
        let e: Box<dyn std::error::Error> =
            Box::new(CoreError::VerificationFailed { property: "girth".into() });
        assert!(e.to_string().contains("girth"));
    }
}
