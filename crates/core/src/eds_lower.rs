//! The tight edge-dominating-set lower bound — **Theorem 1.6**.
//!
//! The theorem: no local ID algorithm approximates minimum edge dominating
//! set on connected graphs of maximum degree Δ better than
//! `α₀ = 4 − 2/Δ′`, `Δ′ = 2⌊Δ/2⌋`. The engine is a Δ′-regular instance
//! `G₀` on which *every* PO algorithm is badly stuck, amplified to ID by
//! the main theorem.
//!
//! Our reconstruction of `G₀` (DESIGN.md substitution #5):
//!
//! * **The gadget.** For `Δ′ = 2k`, take `K_{2k, 2k−1}` plus a perfect
//!   matching `D` on the `2k`-side: a `2k`-regular graph on `4k − 1`
//!   nodes whose minimum EDS is the matching `D` itself, of size `k` —
//!   *perfect*, i.e. meeting the counting bound `nΔ′/(2(2Δ′−1))` (each EDS
//!   edge dominates at most `2Δ′ − 1` edges). [`gadget`] builds it;
//!   branch-and-bound certifies optimality. Arbitrarily large instances
//!   are connected lifts of the gadget ([`eds_instance`]); fibre-preimages
//!   keep the optimum perfect.
//! * **The symmetry.** A `2k`-regular graph 2-factorises (Petersen;
//!   [`locap_graph::factor::two_factor_labeling`]) into a *label-complete*
//!   L-digraph, in which **every radius-r view is the complete tree
//!   `(T*, λ)` — identical at every node, for every `r`.** Hence any PO
//!   algorithm outputs the same per-letter mask everywhere and its
//!   solution is a union of label classes; each class is a 2-factor with
//!   `n` edges and any single class is already feasible, so the best
//!   PO-attainable solution has exactly `n` edges.
//! * **The ratio.** `n / (nΔ′/(2(2Δ′−1))) = 2(2Δ′−1)/Δ′ = 4 − 2/Δ′`,
//!   matched exactly; both quantities are computed, not assumed.

use std::collections::BTreeSet;

use locap_graph::budget::RunBudget;
use locap_graph::factor::two_factor_labeling;
use locap_graph::{Edge, Graph, LDigraph};
use locap_lifts::{connect_copies, ViewCache};
use locap_num::Ratio;
use locap_obs as obs;
use locap_problems::edge_dominating_set;

use crate::CoreError;

/// A reconstructed lower-bound instance `G₀` (possibly a connected lift of
/// the base gadget).
#[derive(Debug, Clone)]
pub struct EdsInstance {
    /// The label-complete 2-factorised L-digraph.
    pub digraph: LDigraph,
    /// The degree Δ′ = 2k.
    pub delta_prime: usize,
    /// Lift degree over the base gadget (1 = the gadget itself).
    pub lift_degree: usize,
}

impl EdsInstance {
    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.digraph.node_count()
    }
}

/// The tight bound `4 − 2/Δ′` as an exact rational. Total: `Δ′ = 0`
/// (outside the theorem's range) yields `0`.
pub fn eds_bound(delta_prime: usize) -> Ratio {
    let dp = delta_prime as i128;
    Ratio::new(4 * dp - 2, dp).unwrap_or(Ratio::ZERO)
}

/// The perfect-EDS size `nΔ′/(2(2Δ′−1))`, when integral.
pub fn perfect_eds_size(n: usize, delta_prime: usize) -> Option<usize> {
    let num = n * delta_prime;
    let den = 2 * (2 * delta_prime - 1);
    (num % den == 0).then(|| num / den)
}

/// The base gadget for `Δ′ = 2k`: `K_{2k, 2k−1}` plus a perfect matching
/// on the `2k`-side. Nodes `0..2k` are the matched side (`2i ~ 2i+1`),
/// nodes `2k..4k−1` the independent side.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn gadget(k: usize) -> Graph {
    assert!(k >= 1, "k must be positive");
    let t = 2 * k; // matched side
    let u = 2 * k - 1; // independent side
    let mut g = Graph::new(t + u);
    for a in 0..t {
        for b in 0..u {
            g.add_edge(a, t + b).expect("bipartite edges are simple");
        }
    }
    for i in 0..k {
        g.add_edge(2 * i, 2 * i + 1).expect("matching edges are simple");
    }
    g
}

/// Builds the lower-bound instance for `Δ′ = delta_prime` on `n` nodes
/// (`n` must be a multiple of `4k − 1`; the instance is a connected
/// `n/(4k−1)`-lift of the gadget).
///
/// Returns `None` for odd/too-small Δ′ or incompatible `n`.
pub fn eds_instance(delta_prime: usize, n: usize) -> Option<EdsInstance> {
    if delta_prime % 2 != 0 || delta_prime < 2 {
        return None;
    }
    let k = delta_prime / 2;
    let base_n = 4 * k - 1;
    if n == 0 || n % base_n != 0 {
        return None;
    }
    let l = n / base_n;
    let base = gadget(k);
    let labeled = two_factor_labeling(&base).ok()?;
    let (digraph, lift_degree) = if l == 1 {
        (labeled, 1)
    } else {
        let (lift, _phi) = connect_copies(&labeled, l).ok()?;
        (lift, l)
    };
    Some(EdsInstance { digraph, delta_prime, lift_degree })
}

/// The report certifying the PO lower bound on an instance.
#[derive(Debug, Clone)]
pub struct LowerBoundReport {
    /// Number of nodes.
    pub n: usize,
    /// The exact optimum (must equal the perfect size).
    pub opt: usize,
    /// An optimal solution (witness).
    pub opt_set: BTreeSet<Edge>,
    /// The minimum size of a feasible symmetric (PO-attainable) solution.
    pub min_symmetric: usize,
    /// Number of distinct radius-2 views (must be 1).
    pub view_classes: usize,
    /// The certified ratio `min_symmetric / opt`.
    pub ratio: Ratio,
}

/// Certifies the lower bound on an instance: checks view symmetry (all
/// views identical — guaranteed by label-completeness, re-checked by
/// census), enumerates all symmetric solutions (unions of label classes),
/// computes the exact optimum, and returns the ratio.
///
/// # Errors
///
/// Fails if the instance is not PO-symmetric or no symmetric solution is
/// feasible.
pub fn lower_bound_report(inst: &EdsInstance) -> Result<LowerBoundReport, CoreError> {
    lower_bound_report_budgeted(inst, &RunBudget::unlimited())
}

/// Budget-aware [`lower_bound_report`]: the census respects the budget's
/// cache cap, and the symmetric enumeration and exact solve check the
/// deadline. The report certifies an exact minimum, so a tripped budget
/// is [`CoreError::Truncated`] naming the stage, not a partial report.
///
/// # Errors
///
/// Same conditions as [`lower_bound_report`], plus
/// [`CoreError::Truncated`] when the budget trips.
pub fn lower_bound_report_budgeted(
    inst: &EdsInstance,
    budget: &RunBudget,
) -> Result<LowerBoundReport, CoreError> {
    let d = &inst.digraph;
    let n = d.node_count();
    let _span = obs::span_with("eds_lower/report", &[("nodes", n as i64)]);
    if !d.is_label_complete() {
        return Err(CoreError::VerificationFailed {
            property: "instance is not label-complete".into(),
        });
    }
    // symmetry: all views isomorphic (label-completeness forces this at
    // every radius; we re-check r = 1, 2 by exact census). One shared
    // ViewCache: the radius-2 refinement reuses the radius-1 levels.
    {
        let _span = obs::span("census");
        let mut cache = ViewCache::new(d);
        for r in 1..=2 {
            let census = match cache.try_census(r, budget.cache_cap()) {
                Ok(c) => c,
                Err(t) => {
                    return Err(CoreError::Truncated { stage: "view census", reason: t.publish() })
                }
            };
            if census.len() != 1 {
                return Err(CoreError::VerificationFailed {
                    property: format!("{} view classes at radius {r}", census.len()),
                });
            }
        }
    }
    let und = d.underlying().map_err(|e| CoreError::BadParameters { reason: e.to_string() })?;

    // symmetric solutions: unions of label classes
    let min_symmetric = {
        let k = d.alphabet_size();
        let _span = obs::span_with("symmetric_enum", &[("labels", k as i64)]);
        let mut best: Option<usize> = None;
        for mask in 1u32..(1 << k) {
            if let Some(t) = budget.check_interrupt() {
                return Err(CoreError::Truncated {
                    stage: "symmetric enumeration",
                    reason: t.publish(),
                });
            }
            let chosen: BTreeSet<Edge> = d
                .edges()
                .filter(|e| mask & (1 << e.label) != 0)
                .map(|e| Edge::new(e.from, e.to))
                .collect();
            if edge_dominating_set::feasible(&und, &chosen) {
                best = Some(best.map_or(chosen.len(), |b: usize| b.min(chosen.len())));
            }
        }
        best.ok_or(CoreError::VerificationFailed {
            property: "no symmetric solution is feasible".into(),
        })?
    };

    if let Some(t) = budget.check_interrupt() {
        return Err(CoreError::Truncated { stage: "exact optimum", reason: t.publish() });
    }
    let opt_span = obs::span("opt_solve");
    let opt_set = edge_dominating_set::solve_exact(&und);
    let opt = opt_set.len();
    drop(opt_span);
    let ratio = Ratio::new(min_symmetric as i128, opt as i128)
        .map_err(|e| CoreError::BadParameters { reason: e.to_string() })?;

    Ok(LowerBoundReport { n, opt, opt_set, min_symmetric, view_classes: 1, ratio })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_values() {
        assert_eq!(eds_bound(2), Ratio::from_int(3));
        assert_eq!(eds_bound(4), Ratio::new(7, 2).unwrap());
        assert_eq!(eds_bound(6), Ratio::new(11, 3).unwrap());
        assert_eq!(perfect_eds_size(9, 2), Some(3));
        assert_eq!(perfect_eds_size(10, 2), None);
        assert_eq!(perfect_eds_size(14, 4), Some(4));
        assert_eq!(perfect_eds_size(28, 4), Some(8));
    }

    #[test]
    fn gadget_structure() {
        // k = 1: the triangle
        let g1 = gadget(1);
        assert_eq!(g1.node_count(), 3);
        assert!(g1.is_regular(2));
        assert_eq!(edge_dominating_set::opt_value(&g1), 1);

        // k = 2: K_{4,3} + matching, 7 nodes, 4-regular, perfect EDS = 2
        let g2 = gadget(2);
        assert_eq!(g2.node_count(), 7);
        assert!(g2.is_regular(4));
        assert!(g2.is_connected());
        assert_eq!(edge_dominating_set::opt_value(&g2), 2);
        assert_eq!(perfect_eds_size(7, 4), Some(2));

        // k = 3: 11 nodes, 6-regular, perfect EDS = 3
        let g3 = gadget(3);
        assert_eq!(g3.node_count(), 11);
        assert!(g3.is_regular(6));
        assert_eq!(edge_dominating_set::opt_value(&g3), 3);
    }

    #[test]
    fn delta_prime_2_base_is_triangle() {
        let inst = eds_instance(2, 3).unwrap();
        assert_eq!(inst.lift_degree, 1);
        let report = lower_bound_report(&inst).unwrap();
        assert_eq!(report.opt, 1);
        assert_eq!(report.min_symmetric, 3);
        assert_eq!(report.ratio, eds_bound(2));
    }

    #[test]
    fn delta_prime_2_lifts_scale() {
        for n in [9usize, 12, 21] {
            let inst = eds_instance(2, n).unwrap();
            assert_eq!(inst.n(), n);
            assert!(inst.digraph.underlying_simple().is_connected());
            let report = lower_bound_report(&inst).unwrap();
            assert_eq!(report.ratio, eds_bound(2), "n = {n}");
            assert_eq!(report.opt, perfect_eds_size(n, 2).unwrap());
        }
        // n not divisible by 3: no instance
        assert!(eds_instance(2, 10).is_none());
    }

    #[test]
    fn delta_prime_4_gadget_and_lift() {
        let inst = eds_instance(4, 7).unwrap();
        let report = lower_bound_report(&inst).unwrap();
        assert_eq!(report.ratio, eds_bound(4), "ratio must be 7/2");
        assert_eq!(report.min_symmetric, 7);
        assert_eq!(report.opt, 2);

        let inst = eds_instance(4, 14).unwrap();
        assert_eq!(inst.lift_degree, 2);
        assert!(inst.digraph.underlying_simple().is_connected());
        let report = lower_bound_report(&inst).unwrap();
        assert_eq!(report.ratio, eds_bound(4));
        assert_eq!(report.opt, 4);
    }

    #[test]
    fn delta_prime_6_gadget() {
        let inst = eds_instance(6, 11).unwrap();
        let report = lower_bound_report(&inst).unwrap();
        assert_eq!(report.ratio, eds_bound(6), "ratio must be 11/3");
        assert_eq!(report.opt, 3);
        assert_eq!(report.min_symmetric, 11);
    }

    #[test]
    fn symmetric_minimum_is_one_class() {
        let inst = eds_instance(2, 12).unwrap();
        let report = lower_bound_report(&inst).unwrap();
        assert_eq!(report.min_symmetric, 12);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(eds_instance(3, 12).is_none());
        assert!(eds_instance(1, 12).is_none());
        assert!(eds_instance(4, 12).is_none(), "12 not a multiple of 7");
        assert!(eds_instance(2, 0).is_none());
    }
}
