//! A minimal, dependency-free, offline stand-in for the subset of the
//! `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim under the package name `rand` (see the workspace
//! `[workspace.dependencies]`). It provides:
//!
//! * [`RngCore`] / [`Rng`] with `gen_range`, `gen_bool`, `gen`;
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`] /
//!   [`rngs::SmallRng`] (both xoshiro256\*\* seeded via splitmix64 —
//!   deterministic across platforms, which is all the tests need);
//! * [`seq::SliceRandom`] with `shuffle` and `choose`.
//!
//! The streams differ from upstream `rand`, but every use in this
//! workspace only relies on determinism-given-seed and uniformity, never
//! on the exact upstream stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level generator interface: a source of uniform random `u64`s.
pub trait RngCore {
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniform random bits (high bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive integer
    /// ranges).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of [0, 1]");
        // 53 uniform mantissa bits, exactly like rand's f64 sampling.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }

    /// A uniform sample of the whole domain of `T` (integers and `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types uniformly sampleable over their whole domain (the shim's version
/// of `distributions::Standard`).
pub trait Standard {
    /// Draws a uniform value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + off) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generator types (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256\*\* seeded by splitmix64.
    /// Deterministic given the seed; not cryptographic (neither is the
    /// upstream use here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut st = seed;
            StdRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    /// Alias for [`StdRng`] — the shim has a single generator.
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers (mirrors `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(10..20usize);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "unbiased-ish: {heads}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
