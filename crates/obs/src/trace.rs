//! Per-event tracing: bounded per-thread ring buffers of typed events
//! with Chrome trace-event and collapsed-stack (flamegraph) export.
//!
//! The aggregate layer in [`crate`] answers *how much* — total time per
//! span path, hit/miss totals. This module answers *when* and *where*:
//! every span begin/end (via the existing [`crate::Span`] RAII), instant
//! event and counter sample is stamped with a monotonic timestamp and a
//! thread id and appended to a **bounded per-thread ring buffer** — no
//! locks and, after the ring has grown to capacity, no allocation on the
//! append path (name interning is cached per thread, so each distinct
//! name allocates once per thread during warm-up). When a ring is full
//! the oldest events are overwritten and counted as dropped.
//!
//! Tracing is **off by default**: every probe starts with one relaxed
//! atomic load ([`enabled`]) and bails, so instrumented hot paths cost
//! nothing measurable when the `OBS_TRACE` environment variable is
//! unset. With `OBS_TRACE=<path>` set (see [`init_from_env`] /
//! [`flush_from_env`], which the experiment binaries call), the merged
//! buffers are written on exit as
//!
//! * `<path>` — Chrome trace-event JSON (`{"traceEvents": [...]}`),
//!   loadable in Perfetto / `chrome://tracing`; spans are complete (`X`)
//!   events with microsecond timestamps and structured args, instants
//!   are `i` events, counter samples are `C` events, and each thread
//!   gets a `thread_name` metadata record;
//! * `<path>.folded` — collapsed stacks (`a;b;c <self_ns>`), one line
//!   per span path with its **self** time in nanoseconds, directly
//!   consumable by inferno / `flamegraph.pl`.
//!
//! Worker threads spawned under `std::thread::scope` carry their own
//! ring (and thread id); call sites adopt the parent's span path via
//! [`crate::adopt_span_path`] so fan-out renders as parallel tracks
//! under the same ancestry in the timeline.
//!
//! `OBS_TRACE_CAP` overrides the per-thread ring capacity (events;
//! default 65536).

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;
use crate::lock_unpoisoned;

/// Maximum structured args carried by one event.
pub const MAX_ARGS: usize = 4;

/// Default per-thread ring capacity, in events.
pub const DEFAULT_RING_CAP: usize = 1 << 16;

/// What an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span (begin + duration).
    Span,
    /// A point-in-time marker.
    Instant,
    /// A sampled counter value.
    Counter,
}

/// One trace event with interned name/arg-key ids. Fixed-size: appending
/// one to a warm ring moves no heap memory.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Event kind.
    pub kind: EventKind,
    /// Interned name id (resolve with the collector's name table).
    pub name: u32,
    /// Thread id (dense, assigned per thread on first event).
    pub tid: u32,
    /// Nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds (spans; 0 otherwise).
    pub dur_ns: u64,
    /// Sampled value (counters; 0 otherwise).
    pub value: i64,
    /// Structured args as (interned key, value); first `n_args` valid.
    pub args: [(u32, i64); MAX_ARGS],
    /// Number of valid entries in `args`.
    pub n_args: u8,
}

/// A resolved event: names and arg keys as strings (export/report form).
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedEvent {
    /// Event kind.
    pub kind: EventKind,
    /// Full event name (for spans: the nested span path).
    pub name: String,
    /// Thread id.
    pub tid: u32,
    /// Nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds (spans; 0 otherwise).
    pub dur_ns: u64,
    /// Sampled value (counters; 0 otherwise).
    pub value: i64,
    /// Structured args.
    pub args: Vec<(String, i64)>,
}

/// Global trace state: the enabled flag is checked (one relaxed load)
/// before anything else on every probe.
static ENABLED: AtomicBool = AtomicBool::new(false);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU32 = AtomicU32::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Interned names, shared by all threads; thread-local caches keep the
/// hot path lock-free after each name's first use on a thread.
#[derive(Default)]
struct Interner {
    ids: HashMap<String, u32>,
    names: Vec<String>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new(); // lint: lock-rank=20
    INTERNER.get_or_init(|| Mutex::new(Interner::default()))
}

fn intern_global(name: &str) -> u32 {
    let mut i = lock_unpoisoned(interner());
    if let Some(&id) = i.ids.get(name) {
        return id;
    }
    let id = i.names.len() as u32;
    i.names.push(name.to_string());
    i.ids.insert(name.to_string(), id);
    id
}

/// The sink completed per-thread rings drain into (at thread exit, via
/// the ring's destructor) together with each thread's display name.
#[derive(Default)]
struct Sink {
    events: Vec<Event>,
    thread_names: Vec<(u32, String)>,
}

fn sink() -> &'static Mutex<Sink> {
    static SINK: OnceLock<Mutex<Sink>> = OnceLock::new(); // lint: lock-rank=21
    SINK.get_or_init(|| Mutex::new(Sink::default()))
}

/// The per-thread ring buffer. Lives in a thread-local; its destructor
/// drains collected events into the global sink when the thread exits.
struct Ring {
    tid: u32,
    buf: Vec<Event>,
    /// Index of the oldest event once `buf` reached capacity.
    head: usize,
    cap: usize,
    dropped: u64,
    /// Per-thread interned-name cache (global id lookups without the lock).
    names: HashMap<String, u32>,
}

impl Ring {
    fn new() -> Ring {
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        let name = std::thread::current()
            .name()
            .map_or_else(|| format!("thread-{tid}"), |n| n.to_string());
        lock_unpoisoned(sink()).thread_names.push((tid, name));
        Ring { tid, buf: Vec::new(), head: 0, cap: ring_cap(), dropped: 0, names: HashMap::new() }
    }

    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.names.get(name) {
            return id;
        }
        let id = intern_global(name);
        self.names.insert(name.to_string(), id);
        id
    }

    fn push(&mut self, e: Event) {
        if self.buf.len() < self.cap {
            self.buf.push(e);
        } else if self.cap > 0 {
            self.buf[self.head] = e;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Events in arrival order (oldest first).
    fn drain_ordered(&mut self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        self.buf.clear();
        self.head = 0;
        out
    }
}

impl Drop for Ring {
    fn drop(&mut self) {
        let events = self.drain_ordered();
        DROPPED.fetch_add(self.dropped, Ordering::Relaxed);
        self.dropped = 0;
        if let Ok(mut s) = sink().lock() {
            s.events.extend(events);
        }
    }
}

thread_local! {
    static RING: RefCell<Ring> = RefCell::new(Ring::new());
}

fn ring_cap() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("OBS_TRACE_CAP")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_RING_CAP)
    })
}

/// Whether tracing is collecting events. One relaxed atomic load — the
/// entire cost of every probe in an untraced run.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns collection on (programmatic alternative to [`init_from_env`];
/// used by tests and embedding tools). Pins the trace epoch on first use.
pub fn enable() {
    epoch();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns collection off; already-buffered events stay until drained.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Enables tracing iff the `OBS_TRACE` environment variable names an
/// output path. Experiment binaries call this once at startup; pair with
/// [`flush_from_env`] at exit.
pub fn init_from_env() {
    if trace_path().is_some() {
        enable();
    }
}

/// The `OBS_TRACE` output path, if set to a non-empty value.
pub fn trace_path() -> Option<String> {
    match std::env::var("OBS_TRACE") {
        Ok(p) if !p.is_empty() => Some(p),
        _ => None,
    }
}

/// Nanoseconds since the trace epoch.
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Timestamp for a span that started at `start` (saturates to 0 for
/// instants taken before the epoch was pinned).
pub(crate) fn ts_of(start: Instant) -> u64 {
    start.duration_since(epoch()).as_nanos().min(u64::MAX as u128) as u64
}

fn pack_args(ring: &mut Ring, args: &[(&str, i64)]) -> ([(u32, i64); MAX_ARGS], u8) {
    let mut packed = [(0u32, 0i64); MAX_ARGS];
    let n = args.len().min(MAX_ARGS);
    for (slot, &(k, v)) in packed.iter_mut().zip(args.iter().take(MAX_ARGS)) {
        *slot = (ring.intern(k), v);
    }
    (packed, n as u8)
}

fn record(kind: EventKind, name: &str, ts_ns: u64, dur_ns: u64, value: i64, args: &[(&str, i64)]) {
    RING.with(|r| {
        let mut ring = r.borrow_mut();
        let name = ring.intern(name);
        let (packed, n_args) = pack_args(&mut ring, args);
        let tid = ring.tid;
        ring.push(Event { kind, name, tid, ts_ns, dur_ns, value, args: packed, n_args });
    });
}

/// Records a completed span (called from [`crate::Span`]'s drop; tools
/// emitting synthetic traces may call it directly).
pub fn record_span(path: &str, ts_ns: u64, dur_ns: u64, args: &[(&str, i64)]) {
    if !enabled() {
        return;
    }
    record(EventKind::Span, path, ts_ns, dur_ns, 0, args);
}

/// Records an instant event (a point-in-time marker, e.g. a cache miss).
/// No-op unless tracing is enabled.
#[inline]
pub fn instant(name: &str, args: &[(&str, i64)]) {
    if !enabled() {
        return;
    }
    record(EventKind::Instant, name, now_ns(), 0, 0, args);
}

/// Records a counter sample (a named value at a point in time, rendered
/// as a counter track). No-op unless tracing is enabled.
#[inline]
pub fn counter_sample(name: &str, value: i64) {
    if !enabled() {
        return;
    }
    record(EventKind::Counter, name, now_ns(), 0, value, &[]);
}

/// Drains the calling thread's ring into the shared sink. Worker guards
/// ([`crate::PathAdoption`]) call this on drop so event delivery does not
/// race scope join (scoped threads signal completion *before* their
/// thread-local destructors run); harmless to call anywhere else.
pub fn flush_thread() {
    RING.with(|r| {
        let mut ring = r.borrow_mut();
        let events = ring.drain_ordered();
        DROPPED.fetch_add(ring.dropped, Ordering::Relaxed);
        ring.dropped = 0;
        if !events.is_empty() {
            lock_unpoisoned(sink()).events.extend(events);
        }
    });
}

/// Drains every buffered event — the calling thread's ring plus all rings
/// of already-exited threads — resolved to string names, in stable
/// (tid, timestamp) order. Returns the events and the number of events
/// lost to ring overwrites.
///
/// Threads still running keep their buffers; call from the coordinating
/// thread after scoped workers have joined. Workers holding a
/// [`crate::PathAdoption`] guard deliver deterministically (the guard
/// flushes on drop); bare threads deliver at thread exit, which can lag
/// a scope join — prefer adoption guards in scoped workers.
pub fn drain() -> (Vec<ResolvedEvent>, u64) {
    let mut events = RING.with(|r| {
        let mut ring = r.borrow_mut();
        DROPPED.fetch_add(ring.dropped, Ordering::Relaxed);
        ring.dropped = 0;
        ring.drain_ordered()
    });
    {
        let mut s = lock_unpoisoned(sink());
        events.append(&mut s.events);
    }
    let names = {
        let i = lock_unpoisoned(interner());
        i.names.clone()
    };
    let name_of = |id: u32| names.get(id as usize).cloned().unwrap_or_default();
    let mut out: Vec<ResolvedEvent> = events
        .into_iter()
        .map(|e| ResolvedEvent {
            kind: e.kind,
            name: name_of(e.name),
            tid: e.tid,
            ts_ns: e.ts_ns,
            dur_ns: e.dur_ns,
            value: e.value,
            args: e.args[..e.n_args as usize].iter().map(|&(k, v)| (name_of(k), v)).collect(),
        })
        .collect();
    out.sort_by_key(|a| (a.tid, a.ts_ns));
    (out, DROPPED.swap(0, Ordering::Relaxed))
}

/// Thread display names recorded so far, as `(tid, name)` pairs.
fn thread_names() -> Vec<(u32, String)> {
    lock_unpoisoned(sink()).thread_names.clone()
}

/// Renders events as a Chrome trace-event JSON document (the
/// `{"traceEvents": [...]}` object form; timestamps in microseconds).
pub fn to_chrome_json(events: &[ResolvedEvent], dropped: u64) -> String {
    let us = |ns: u64| Json::Num(ns as f64 / 1000.0);
    let mut rows: Vec<Json> = Vec::with_capacity(events.len() + 8);
    for (tid, name) in thread_names() {
        rows.push(Json::Obj(vec![
            ("ph".into(), Json::Str("M".into())),
            ("name".into(), Json::Str("thread_name".into())),
            ("pid".into(), Json::Num(1.0)),
            ("tid".into(), Json::Num(tid as f64)),
            ("args".into(), Json::Obj(vec![("name".into(), Json::Str(name))])),
        ]));
    }
    for e in events {
        let args: Vec<(String, Json)> =
            e.args.iter().map(|(k, v)| (k.clone(), Json::Num(*v as f64))).collect();
        let mut row = vec![
            ("name".into(), Json::Str(e.name.clone())),
            ("pid".into(), Json::Num(1.0)),
            ("tid".into(), Json::Num(e.tid as f64)),
            ("ts".into(), us(e.ts_ns)),
        ];
        match e.kind {
            EventKind::Span => {
                row.push(("ph".into(), Json::Str("X".into())));
                row.push(("dur".into(), us(e.dur_ns)));
                row.push(("cat".into(), Json::Str("span".into())));
                row.push(("args".into(), Json::Obj(args)));
            }
            EventKind::Instant => {
                row.push(("ph".into(), Json::Str("i".into())));
                row.push(("s".into(), Json::Str("t".into())));
                row.push(("cat".into(), Json::Str("instant".into())));
                row.push(("args".into(), Json::Obj(args)));
            }
            EventKind::Counter => {
                row.push(("ph".into(), Json::Str("C".into())));
                row.push(("cat".into(), Json::Str("counter".into())));
                row.push((
                    "args".into(),
                    Json::Obj(vec![("value".into(), Json::Num(e.value as f64))]),
                ));
            }
        }
        rows.push(Json::Obj(row));
    }
    Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(rows)),
        ("displayTimeUnit".into(), Json::Str("ns".into())),
        ("droppedEvents".into(), Json::Num(dropped as f64)),
    ])
    .to_string()
}

/// Renders span events as collapsed stacks (`a;b;c <self_ns>` lines,
/// sorted by stack), flamegraph/inferno-compatible. The value of each
/// line is the path's **self** time: its total minus the totals of its
/// direct children in the span-path tree, clamped at zero (parallel
/// workers can legitimately exceed their parent's wall-clock time).
pub fn to_collapsed(events: &[ResolvedEvent]) -> String {
    use std::collections::BTreeMap;
    let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
    for e in events {
        if e.kind == EventKind::Span {
            *totals.entry(e.name.as_str()).or_insert(0) += e.dur_ns;
        }
    }
    let mut child_sum: BTreeMap<&str, u64> = BTreeMap::new();
    for &path in totals.keys() {
        if let Some((parent, _)) = path.rsplit_once('/') {
            // nearest *observed* ancestor: walk prefixes until one exists
            let mut anc = parent;
            loop {
                if totals.contains_key(anc) {
                    *child_sum.entry(anc).or_insert(0) += totals[path];
                    break;
                }
                match anc.rsplit_once('/') {
                    Some((up, _)) => anc = up,
                    None => break,
                }
            }
        }
    }
    let mut out = String::new();
    for (path, &total) in &totals {
        let own = total.saturating_sub(child_sum.get(path).copied().unwrap_or(0));
        out.push_str(&path.replace('/', ";"));
        out.push(' ');
        out.push_str(&own.to_string());
        out.push('\n');
    }
    out
}

/// Drains all buffered events and writes `<path>` (Chrome trace JSON) and
/// `<path>.folded` (collapsed stacks).
///
/// # Errors
///
/// Propagates filesystem errors from writing either file.
pub fn flush_to(path: &str) -> std::io::Result<()> {
    let (events, dropped) = drain();
    std::fs::write(path, to_chrome_json(&events, dropped))?;
    std::fs::write(format!("{path}.folded"), to_collapsed(&events))?;
    Ok(())
}

/// Flushes to the `OBS_TRACE` path if tracing was enabled from the
/// environment; returns the path written, if any.
///
/// # Errors
///
/// Propagates filesystem errors from [`flush_to`].
pub fn flush_from_env() -> std::io::Result<Option<String>> {
    match trace_path() {
        Some(p) if enabled() => {
            flush_to(&p)?;
            Ok(Some(p))
        }
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraps_and_counts_drops() {
        let mut ring =
            Ring { tid: 0, buf: Vec::new(), head: 0, cap: 4, dropped: 0, names: HashMap::new() };
        for i in 0..6u64 {
            ring.push(Event {
                kind: EventKind::Instant,
                name: 0,
                tid: 0,
                ts_ns: i,
                dur_ns: 0,
                value: 0,
                args: [(0, 0); MAX_ARGS],
                n_args: 0,
            });
        }
        assert_eq!(ring.dropped, 2);
        let ordered = ring.drain_ordered();
        let ts: Vec<u64> = ordered.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![2, 3, 4, 5], "oldest two overwritten, order preserved");
        // draining resets the ring but not the drop count (flushed globally)
        assert!(ring.buf.is_empty());
    }

    #[test]
    fn collapsed_self_time_subtracts_children() {
        let ev = |name: &str, dur: u64| ResolvedEvent {
            kind: EventKind::Span,
            name: name.into(),
            tid: 0,
            ts_ns: 0,
            dur_ns: dur,
            value: 0,
            args: vec![],
        };
        let events = vec![ev("a", 100), ev("a/b", 30), ev("a/b/c", 10), ev("a/d/e", 20)];
        let folded = to_collapsed(&events);
        let lines: Vec<&str> = folded.lines().collect();
        // a self = 100 - (30 [a/b] + 20 [a/d/e: nearest observed ancestor a])
        assert!(lines.contains(&"a 50"), "{folded}");
        assert!(lines.contains(&"a;b 20"), "{folded}");
        assert!(lines.contains(&"a;b;c 10"), "{folded}");
        assert!(lines.contains(&"a;d;e 20"), "{folded}");
    }

    #[test]
    fn collapsed_clamps_parallel_overrun() {
        let ev = |name: &str, dur: u64| ResolvedEvent {
            kind: EventKind::Span,
            name: name.into(),
            tid: 0,
            ts_ns: 0,
            dur_ns: dur,
            value: 0,
            args: vec![],
        };
        // two parallel workers each took 80 of wall-clock 100
        let events = vec![ev("p", 100), ev("p/worker", 160)];
        assert!(to_collapsed(&events).contains("p 0\n"));
    }
}
