//! E02 — Fig. 2 + §1.1: MIS on cycles separates ID, OI and PO once the
//! run-time may grow with n.
//!
//! * **ID**: Cole–Vishkin finds an MIS in log*-many + O(1) rounds; we
//!   measure the reduction rounds as n grows.
//! * **OI**: with the identity order, all interior nodes of the cycle have
//!   isomorphic ordered r-neighbourhoods, so any radius-r OI algorithm
//!   outputs the same bit on ≥ n − 2r nodes — for n > f(r) that is never
//!   an MIS. We print the census.
//! * **PO**: on the symmetric directed cycle all views coincide, so every
//!   PO algorithm outputs a constant — all-ones is not independent,
//!   all-zeros is not maximal. MIS is unsolvable outright.

#![forbid(unsafe_code)]

use locap_algos::cole_vishkin::{cycle_mis_n, rounds_to_six_colors};
use locap_bench::{cells, hprintln, Table};
use locap_graph::canon::ordered_type_census;
use locap_graph::gen;
use locap_lifts::view_census;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    locap_bench::run("e02_separation", "E02", "Fig. 2 — MIS on cycles: ID vs OI vs PO", body);
}

fn body() {
    hprintln!("\n[ID] Cole–Vishkin MIS, measured rounds (log* behaviour):\n");
    let mut t = Table::new(&[
        "n",
        "reduction rounds",
        "worst over 30 random id draws",
        "total rounds",
        "|MIS|",
        "valid",
    ]);
    let mut rng = StdRng::seed_from_u64(2012);
    for n in [8usize, 16, 64, 256, 1024, 4096] {
        let out = cycle_mis_n(n, None).expect("cycles are well-formed");
        let g = gen::cycle(n);
        let valid = locap_problems::independent_set::feasible(&g, &out.mis)
            && g.nodes().all(|v| {
                out.mis.contains(&v) || g.neighbors(v).iter().any(|u| out.mis.contains(u))
            });
        // worst case over random id assignments from a poly(n) universe
        let universe = (n as u64).saturating_mul(n as u64).max(64);
        let worst = (0..30)
            .map(|_| {
                let ids = locap_graph::random::random_ids(n, universe, &mut rng);
                rounds_to_six_colors(&g, &ids).expect("cycles are well-formed")
            })
            .max()
            .unwrap();
        t.row(&cells([
            &n,
            &out.reduction_rounds,
            &worst,
            &out.total_rounds,
            &out.mis.len(),
            &valid,
        ]));
    }
    t.print();

    hprintln!("\n[OI] ordered-type census of C_n, identity order (radius r):\n");
    let mut t = Table::new(&["n", "r", "types", "largest class", "forced identical fraction"]);
    for (n, r) in [(32usize, 1usize), (32, 2), (256, 2), (256, 3)] {
        let g = gen::cycle(n);
        let rank: Vec<usize> = (0..n).collect();
        let census = ordered_type_census(&g, &rank, r);
        let largest = census[0].1;
        t.row(&cells([
            &n,
            &r,
            &census.len(),
            &largest,
            &format!("{largest}/{n} = {:.3}", largest as f64 / n as f64),
        ]));
    }
    t.print();
    hprintln!(
        "\n  ⇒ any radius-r OI algorithm gives the same answer on the largest\n    \
         class; a constant answer on >= n-2r adjacent nodes is never an MIS\n    \
         (all-1 violates independence, all-0 violates maximality)."
    );

    hprintln!("\n[PO] view census of the symmetric directed cycle:\n");
    let mut t = Table::new(&["n", "r", "distinct views"]);
    for (n, r) in [(16usize, 1usize), (16, 3), (128, 3)] {
        let d = gen::directed_cycle(n);
        t.row(&cells([&n, &r, &view_census(&d, r).len()]));
    }
    t.print();
    hprintln!(
        "\n  ⇒ 1 view class: every PO algorithm is constant on C_n — MIS is\n    \
         unsolvable in PO at any constant radius."
    );
}
