//! Property tests for the hand-rolled lexer: on *any* input — arbitrary
//! bytes, pathological Rust-ish fragments, truncated literals — `lex`
//! must not panic, and the token spans must tile the input exactly
//! (contiguous, in order, first at 0, last at `len`), with every span
//! boundary on a UTF-8 character boundary. These are the invariants the
//! rule engine builds on: a mis-tiled stream silently shifts every
//! line/column the analyzer reports.

use locap_lint::lexer::{lex, Token};
use proptest::prelude::*;

/// Fragments chosen to stress the lexer's tricky paths: raw strings,
/// nested comments, lifetimes vs chars, numbers with `..`, multi-byte
/// UTF-8, and *unterminated* literal prefixes.
const FRAGMENTS: &[&str] = &[
    "fn f() {}",
    "r#\"raw \" string\"#",
    "r\"plain raw\"",
    "b\"bytes\\x00\"",
    "'a'",
    "'\\n'",
    "'lifetime",
    "&'static str",
    "/* outer /* nested */ still comment */",
    "// line\n",
    "//! inner doc\n",
    "/// outer doc `# Panics`\n",
    "1..n",
    "x.0.1",
    "1_000e-9f64",
    "0xfe_u8",
    "\"unterminated",
    "r#\"unterminated raw",
    "/* unterminated block",
    "ident_with_∆_inside",
    "é",
    "🔥",
    "#![forbid(unsafe_code)]",
    "v[i]",
    ".unwrap()",
    "Instant::now()",
    "::",
    "\\",
    "\u{0}",
    " \t\r\n",
];

/// Asserts the core lexer invariants for `src`.
fn assert_tiling(src: &str) -> Result<(), TestCaseError> {
    let tokens: Vec<Token> = lex(src);
    let mut pos = 0usize;
    for t in &tokens {
        prop_assert_eq!(t.start, pos, "gap or overlap before token at {} in {:?}", t.start, src);
        prop_assert!(t.start < t.end, "empty token span at {} in {:?}", t.start, src);
        prop_assert!(src.is_char_boundary(t.start) && src.is_char_boundary(t.end));
        pos = t.end;
    }
    prop_assert_eq!(pos, src.len(), "tokens do not cover the tail of {:?}", src);
    Ok(())
}

proptest! {
    /// Arbitrary bytes (lossily decoded): the lexer survives and tiles.
    #[test]
    fn survives_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0usize..300)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        assert_tiling(&src)?;
    }

    /// Random concatenations of adversarial Rust fragments: the lexer
    /// tiles exactly even when literals swallow later fragments.
    #[test]
    fn survives_rust_fragment_soup(ix in prop::collection::vec(0usize..FRAGMENTS.len(), 0usize..24)) {
        let src: String = ix.iter().map(|&i| FRAGMENTS[i]).collect::<Vec<_>>().join(" ");
        assert_tiling(&src)?;
    }

    /// Lexing is a pure function of the input: two runs agree.
    #[test]
    fn is_deterministic(ix in prop::collection::vec(0usize..FRAGMENTS.len(), 0usize..16)) {
        let src: String = ix.iter().map(|&i| FRAGMENTS[i]).collect::<Vec<_>>().concat();
        prop_assert_eq!(lex(&src), lex(&src));
    }
}
