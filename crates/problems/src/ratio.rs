use locap_num::Ratio;

/// Optimisation direction of a simple graph problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Goal {
    /// Minimise the solution size.
    Minimize,
    /// Maximise the solution size.
    Maximize,
}

/// The exact approximation ratio of a feasible solution of size `found`
/// against the optimum `opt`, normalised to be ≥ 1 in both directions
/// (`found/opt` for minimisation, `opt/found` for maximisation).
///
/// Returns `None` when the ratio is undefined (zero denominator — e.g. an
/// empty maximisation solution against a positive optimum).
///
/// # Examples
///
/// ```
/// use locap_num::Ratio;
/// use locap_problems::{approx_ratio, Goal};
///
/// assert_eq!(approx_ratio(6, 3, Goal::Minimize), Some(Ratio::from_int(2)));
/// assert_eq!(approx_ratio(2, 5, Goal::Maximize), Some(Ratio::new(5, 2).unwrap()));
/// assert_eq!(approx_ratio(0, 0, Goal::Minimize), Some(Ratio::ONE));
/// assert_eq!(approx_ratio(0, 3, Goal::Maximize), None);
/// ```
pub fn approx_ratio(found: usize, opt: usize, goal: Goal) -> Option<Ratio> {
    let (num, den) = match goal {
        Goal::Minimize => (found, opt),
        Goal::Maximize => (opt, found),
    };
    if den == 0 {
        return if num == 0 { Some(Ratio::ONE) } else { None };
    }
    Some(Ratio::new(num as i128, den as i128).expect("small positive integers"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        assert_eq!(approx_ratio(4, 4, Goal::Minimize), Some(Ratio::ONE));
        assert_eq!(approx_ratio(7, 2, Goal::Minimize), Some(Ratio::new(7, 2).unwrap()));
        assert_eq!(approx_ratio(3, 9, Goal::Maximize), Some(Ratio::from_int(3)));
        assert_eq!(approx_ratio(5, 0, Goal::Minimize), None);
        assert_eq!(approx_ratio(0, 0, Goal::Maximize), Some(Ratio::ONE));
    }
}
