//! Graph lifts, covering maps and views for the `locap` workspace.
//!
//! The transfer theorems of Göös–Hirvonen–Suomela rest on three pieces of
//! machinery implemented here:
//!
//! * **Covering maps and lifts** (paper §1.6, Fig. 3): a degree- and
//!   label-preserving onto homomorphism `ϕ : V(H) → V(G)` makes `H` a lift
//!   of `G`. [`CoveringMap`] verifies the property exactly; [`trivial_lift`]
//!   and [`random_lift`] construct `l`-lifts; [`connect_copies`] is the
//!   cyclic rewiring of Prop. 4.5 that turns a disjoint union of copies into
//!   a connected lift.
//! * **Views** (paper §2.5, Fig. 4): the view `T(G, v)` is the tree of
//!   non-backtracking walks from `v`, the exact information available to a
//!   PO algorithm. [`view`] computes the radius-`r` truncation
//!   τ(T(G, v)) as a canonical tree; equality of [`ViewTree`]s *is*
//!   isomorphism. The key invariance `B(H, v) = B(G, ϕ(v))` for lifts is
//!   checked in tests and exploited throughout `locap-core`.
//! * **Complete trees** (paper §2.5, Fig. 5): `(T*, λ)` is the view of the
//!   "free" 2|L|-regular structure; every concrete view embeds into it.
//!   [`complete_tree`] builds it, [`reduced_words`] enumerates its vertices
//!   (reduced words over `L ∪ L⁻¹`).
//!
//! # Example
//!
//! ```
//! use locap_graph::gen;
//! use locap_lifts::{random_lift, view};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let g = gen::directed_cycle(3);
//! let mut rng = StdRng::seed_from_u64(1);
//! let (h, phi) = random_lift(&g, 4, &mut rng);
//! phi.verify(&h, &g).unwrap();
//! // Views are invariant under lifts:
//! for v in 0..h.node_count() {
//!     assert_eq!(view(&h, v, 2), view(&g, phi.image(v), 2));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod complete;
mod cover;
mod error;
pub mod pn;
mod view;
mod word;

pub use complete::{complete_tree, reduced_words, t_star_size};
pub use cover::{
    bipartite_double_cover, connect_copies, find_redundant_edge, random_lift, trivial_lift,
    CoveringMap,
};
pub use error::LiftError;
pub use view::{
    census_from_json, census_key, census_to_json, view, view_census, view_census_naive, ViewCache,
    ViewCacheStats, ViewNode, ViewTree, CENSUS_STORE_NS,
};
pub use word::{Letter, Word};
