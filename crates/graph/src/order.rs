use crate::{Graph, GraphError, NodeId};

/// A graph with a linear order on its vertices — the structure available to
/// an **OI** (order-invariant) algorithm (paper §2.4).
///
/// The order is stored as a *rank*: `rank(v)` is the position of `v` in the
/// linear order, with rank 0 the smallest vertex. OI algorithms may depend
/// only on the isomorphism type of the ordered radius-`r` neighbourhood
/// τ(G, <, v); see [`crate::canon::ordered_nbhd`].
///
/// # Examples
///
/// ```
/// use locap_graph::{gen, OrderedGraph};
///
/// let g = gen::cycle(4);
/// let og = OrderedGraph::identity(g);
/// assert!(og.less(0, 3));
/// assert_eq!(og.rank(2), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderedGraph {
    graph: Graph,
    rank: Vec<usize>,
}

impl OrderedGraph {
    /// Orders the vertices by their indices: `0 < 1 < … < n-1`.
    pub fn identity(graph: Graph) -> OrderedGraph {
        let rank = (0..graph.node_count()).collect();
        OrderedGraph { graph, rank }
    }

    /// Uses an explicit rank vector (`rank[v]` = position of `v`).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::BadOrder`] unless `rank` is a permutation of
    /// `0..n`.
    pub fn from_rank(graph: Graph, rank: Vec<usize>) -> Result<OrderedGraph, GraphError> {
        let n = graph.node_count();
        if rank.len() != n {
            return Err(GraphError::BadOrder {
                reason: format!("rank vector has length {} for {} nodes", rank.len(), n),
            });
        }
        let mut seen = vec![false; n];
        for &r in &rank {
            if r >= n || seen[r] {
                return Err(GraphError::BadOrder {
                    reason: format!("rank {r} repeated or out of range"),
                });
            }
            seen[r] = true;
        }
        Ok(OrderedGraph { graph, rank })
    }

    /// Orders vertices by a key function (ties broken by vertex index).
    pub fn by_key<K: Ord>(graph: Graph, mut key: impl FnMut(NodeId) -> K) -> OrderedGraph {
        let n = graph.node_count();
        let mut perm: Vec<NodeId> = (0..n).collect();
        perm.sort_by_key(|&v| (key(v), v));
        let mut rank = vec![0; n];
        for (pos, &v) in perm.iter().enumerate() {
            rank[v] = pos;
        }
        OrderedGraph { graph, rank }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The rank (position in the order) of `v`.
    pub fn rank(&self, v: NodeId) -> usize {
        self.rank[v]
    }

    /// The full rank vector.
    pub fn ranks(&self) -> &[usize] {
        &self.rank
    }

    /// Whether `u < v` in the vertex order.
    pub fn less(&self, u: NodeId, v: NodeId) -> bool {
        self.rank[u] < self.rank[v]
    }

    /// Vertices listed in increasing order.
    pub fn sorted_nodes(&self) -> Vec<NodeId> {
        let mut perm: Vec<NodeId> = (0..self.graph.node_count()).collect();
        perm.sort_by_key(|&v| self.rank[v]);
        perm
    }

    /// Consumes self, returning the graph and the rank vector.
    pub fn into_parts(self) -> (Graph, Vec<usize>) {
        (self.graph, self.rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn identity_order() {
        let og = OrderedGraph::identity(gen::path(4));
        assert!(og.less(0, 1));
        assert!(!og.less(1, 0));
        assert_eq!(og.sorted_nodes(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn from_rank_validates() {
        let g = gen::path(3);
        assert!(OrderedGraph::from_rank(g.clone(), vec![2, 0, 1]).is_ok());
        assert!(OrderedGraph::from_rank(g.clone(), vec![0, 0, 1]).is_err());
        assert!(OrderedGraph::from_rank(g.clone(), vec![0, 1, 5]).is_err());
        assert!(OrderedGraph::from_rank(g.clone(), vec![0, 1]).is_err());
    }

    #[test]
    fn by_key_orders_and_breaks_ties() {
        let g = gen::path(4);
        // key: even nodes first
        let og = OrderedGraph::by_key(g, |v| v % 2);
        assert_eq!(og.sorted_nodes(), vec![0, 2, 1, 3]);
        assert!(og.less(2, 1));
        assert_eq!(og.rank(3), 3);
    }

    #[test]
    fn into_parts_roundtrip() {
        let og = OrderedGraph::from_rank(gen::path(3), vec![2, 1, 0]).unwrap();
        let (_, rank) = og.into_parts();
        assert_eq!(rank, vec![2, 1, 0]);
    }
}
