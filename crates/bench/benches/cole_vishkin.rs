//! Bench: Cole–Vishkin colour reduction on cycles (Fig. 2 / §6.2 —
//! "dependence on n"). The reduction round count is log*-like; wall-clock
//! per full MIS pipeline scales linearly in n with a log* factor.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use locap_algos::cole_vishkin::{cycle_mis, rounds_to_six_colors};
use locap_graph::gen;

fn ids_for(n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|v| v.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17) | 1)
        .collect()
}

fn bench_cv(c: &mut Criterion) {
    let mut group = c.benchmark_group("cole_vishkin_mis");
    for n in [64usize, 256, 1024] {
        let g = gen::cycle(n);
        let ids = ids_for(n);
        group.bench_with_input(BenchmarkId::new("full_pipeline", n), &n, |b, _| {
            b.iter(|| black_box(cycle_mis(&g, &ids).unwrap().mis.len()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("cv_reduction_rounds");
    for n in [64usize, 1024] {
        let g = gen::cycle(n);
        let ids = ids_for(n);
        group.bench_with_input(BenchmarkId::new("rounds_probe", n), &n, |b, _| {
            b.iter(|| black_box(rounds_to_six_colors(&g, &ids).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cv);
criterion_main!(benches);
