//! The transfer pipeline — **Theorems 1.3 / 1.4** instantiated and
//! measured.
//!
//! For an OI algorithm `A`, an L-digraph `G` and a homogeneous graph
//! `H_ε`, this module builds the lift `G_ε`, the simulation `B`, and
//! measures the quantities the proof of Theorem 4.1 manipulates:
//!
//! * **Fact 4.2** — `A(G_ε, <, v) = B(G_ε, v)` on at least a `1 − ε`
//!   fraction of lift vertices;
//! * lift-invariance — `B(G_ε, v) = B(G, ϕ(v))` *exactly* (PO outputs are
//!   functions of views, which covering maps preserve);
//! * the resulting feasibility and approximation ratio of `B` on `G`
//!   against the exact optimum.

use std::collections::BTreeSet;

use locap_graph::budget::RunBudget;
use locap_graph::{Graph, LDigraph};
use locap_models::{run, OiVertexAlgorithm};
use locap_num::Ratio;
use locap_obs as obs;
use locap_problems::{approx_ratio, Goal};

use crate::hom_lift::{homogeneous_lift, HomogeneousLift};
use crate::homogeneous::HomogeneousGraph;
use crate::oi_to_po::PoFromOi;
use crate::CoreError;

/// Joins a scoped worker, forwarding its `Result` and re-raising a panic
/// (a worker panic is a bug, never a malformed-input condition).
pub(crate) fn join_worker<T>(h: std::thread::ScopedJoinHandle<'_, T>) -> T {
    match h.join() {
        Ok(v) => v,
        Err(p) => std::panic::resume_unwind(p),
    }
}

/// Measured outcome of one transfer run (vertex-subset problems).
#[derive(Debug, Clone)]
pub struct TransferReport {
    /// Vertices of the lift `G_ε`.
    pub lift_nodes: usize,
    /// Fraction of lift vertices with `A = B` (Fact 4.2; ≥ 1 − ε).
    pub agreement: Ratio,
    /// `|A(G_ε)|`.
    pub a_on_lift: usize,
    /// `|B(G_ε)|`.
    pub b_on_lift: usize,
    /// `B(G)` — the solution the PO algorithm produces on the base graph.
    pub b_on_g: BTreeSet<usize>,
    /// Whether `B(G)` is feasible for the problem.
    pub feasible: bool,
    /// `B`'s approximation ratio on `G` (vs the exact optimum), if defined.
    pub ratio: Option<Ratio>,
    /// The exact optimum on `G`.
    pub opt: usize,
}

/// Runs the full OI → PO transfer for a vertex-subset minimisation or
/// maximisation problem given by its `feasible` and `opt` oracles.
///
/// # Errors
///
/// Propagates lift-construction failures; reports a verification failure
/// if lift-invariance of `B` is violated (impossible unless a bug).
pub fn transfer_vertex<A>(
    g: &LDigraph,
    h: &HomogeneousGraph,
    oi: A,
    goal: Goal,
    feasible: impl Fn(&Graph, &BTreeSet<usize>) -> bool,
    opt: impl Fn(&Graph) -> usize,
) -> Result<(TransferReport, HomogeneousLift), CoreError>
where
    A: OiVertexAlgorithm + Clone + Send + Sync,
{
    let mut span = obs::span("transfer/vertex");
    let lift = homogeneous_lift(g, h)?;
    span.arg("lift_nodes", lift.node_count() as i64);
    let b = PoFromOi::from_homogeneous(oi.clone(), h)?;

    // A on the ordered lift (OI model) and B on the lift (PO model) are
    // independent; run them on two scoped threads. Each worker adopts the
    // parent span path, so the fan-out shows as parallel tracks under
    // transfer/vertex in traces while span/counter totals stay identical
    // to the sequential order.
    let lift_und = lift.lift.underlying_simple();
    let parent_path = obs::current_span_path();
    let (a_res, b_res) = std::thread::scope(|scope| {
        let a = scope.spawn(|| {
            let _adopt = obs::adopt_span_path(&parent_path);
            run::oi_vertex(&lift_und, &lift.rank, &oi)
        });
        let b_handle = scope.spawn(|| {
            let _adopt = obs::adopt_span_path(&parent_path);
            run::po_vertex(&lift.lift, &b)
        });
        (join_worker(a), join_worker(b_handle))
    });
    let (a_out, b_out) = (a_res?, b_res?);
    let agreement = {
        let same = a_out.iter().zip(&b_out).filter(|(x, y)| x == y).count();
        Ratio::new(same as i128, a_out.len() as i128)
            .map_err(|_| CoreError::BadParameters { reason: "empty lift".into() })?
    };

    // B on the base graph + exact lift-invariance check
    let b_g = run::po_vertex(g, &b)?;
    for v in 0..lift.lift.node_count() {
        if b_out[v] != b_g[lift.phi.image(v)] {
            return Err(CoreError::VerificationFailed {
                property: format!("lift invariance of B at lift node {v}"),
            });
        }
    }

    let b_set = run::to_vertex_set(&b_g);
    let g_und = g.underlying_simple();
    let is_feasible = feasible(&g_und, &b_set);
    let opt_val = opt(&g_und);
    let ratio = approx_ratio(b_set.len(), opt_val, goal);

    Ok((
        TransferReport {
            lift_nodes: lift.node_count(),
            agreement,
            a_on_lift: a_out.iter().filter(|&&x| x).count(),
            b_on_lift: b_out.iter().filter(|&&x| x).count(),
            b_on_g: b_set,
            feasible: is_feasible,
            ratio,
            opt: opt_val,
        },
        lift,
    ))
}

/// Budget-aware [`transfer_vertex`]: the budget is threaded into each of
/// the three engine runs (A on the lift, B on the lift, B on the base
/// graph), which are executed sequentially so the deadline is respected
/// across stages.
///
/// # Errors
///
/// Same conditions as [`transfer_vertex`], plus
/// [`CoreError::Truncated`] naming the interrupted stage when the budget
/// trips — the report is only meaningful when every run completed, so a
/// truncated transfer is an error rather than a partial report.
pub fn transfer_vertex_budgeted<A>(
    g: &LDigraph,
    h: &HomogeneousGraph,
    oi: A,
    goal: Goal,
    feasible: impl Fn(&Graph, &BTreeSet<usize>) -> bool,
    opt: impl Fn(&Graph) -> usize,
    budget: &RunBudget,
) -> Result<(TransferReport, HomogeneousLift), CoreError>
where
    A: OiVertexAlgorithm + Clone + Send + Sync,
{
    let mut span = obs::span("transfer/vertex");
    let lift = homogeneous_lift(g, h)?;
    span.arg("lift_nodes", lift.node_count() as i64);
    let b = PoFromOi::from_homogeneous(oi.clone(), h)?;
    let lift_und = lift.lift.underlying_simple();

    let a_out = require_complete(
        run::oi_vertex_budgeted(&lift_und, &lift.rank, &oi, budget)?,
        "A on lift",
    )?;
    let b_out = require_complete(run::po_vertex_budgeted(&lift.lift, &b, budget)?, "B on lift")?;
    let agreement = {
        let same = a_out.iter().zip(&b_out).filter(|(x, y)| x == y).count();
        Ratio::new(same as i128, a_out.len() as i128)
            .map_err(|_| CoreError::BadParameters { reason: "empty lift".into() })?
    };

    let b_g = require_complete(run::po_vertex_budgeted(g, &b, budget)?, "B on base graph")?;
    for v in 0..lift.lift.node_count() {
        if b_out[v] != b_g[lift.phi.image(v)] {
            return Err(CoreError::VerificationFailed {
                property: format!("lift invariance of B at lift node {v}"),
            });
        }
    }

    let b_set = run::to_vertex_set(&b_g);
    let g_und = g.underlying_simple();
    let is_feasible = feasible(&g_und, &b_set);
    let opt_val = opt(&g_und);
    let ratio = approx_ratio(b_set.len(), opt_val, goal);

    Ok((
        TransferReport {
            lift_nodes: lift.node_count(),
            agreement,
            a_on_lift: a_out.iter().filter(|&&x| x).count(),
            b_on_lift: b_out.iter().filter(|&&x| x).count(),
            b_on_g: b_set,
            feasible: is_feasible,
            ratio,
            opt: opt_val,
        },
        lift,
    ))
}

/// Unwraps a [`Budgeted`](locap_graph::budget::Budgeted) run inside a
/// report-shaped pipeline: a complete value passes through, a truncated
/// one becomes [`CoreError::Truncated`] tagged with `stage`.
pub(crate) fn require_complete<T>(
    run: locap_graph::budget::Budgeted<T>,
    stage: &'static str,
) -> Result<T, CoreError> {
    match run.truncation {
        None => Ok(run.value),
        Some(reason) => Err(CoreError::Truncated { stage, reason }),
    }
}

/// Measured outcome of one transfer run (edge-subset problems).
#[derive(Debug, Clone)]
pub struct EdgeTransferReport {
    /// Vertices of the lift `G_ε`.
    pub lift_nodes: usize,
    /// `|A(G_ε)|` — A's edge solution on the ordered lift.
    pub a_on_lift: usize,
    /// `|B(G_ε)|` — B's edge solution on the lift.
    pub b_on_lift: usize,
    /// `B(G)` — the edge solution on the base graph.
    pub b_on_g: BTreeSet<locap_graph::Edge>,
    /// Whether `B(G)` is feasible.
    pub feasible: bool,
    /// `B`'s approximation ratio on `G`, if defined.
    pub ratio: Option<Ratio>,
    /// The exact optimum on `G`.
    pub opt: usize,
}

/// Runs the OI → PO transfer for an edge-subset problem.
///
/// # Errors
///
/// Propagates lift-construction failures.
pub fn transfer_edge<A>(
    g: &LDigraph,
    h: &HomogeneousGraph,
    oi: A,
    goal: Goal,
    feasible: impl Fn(&Graph, &BTreeSet<locap_graph::Edge>) -> bool,
    opt: impl Fn(&Graph) -> usize,
) -> Result<(EdgeTransferReport, HomogeneousLift), CoreError>
where
    A: locap_models::OiEdgeAlgorithm + Clone + Send + Sync,
{
    use crate::oi_to_po::PoFromOiEdge;

    let mut span = obs::span("transfer/edge");
    let lift = homogeneous_lift(g, h)?;
    span.arg("lift_nodes", lift.node_count() as i64);
    let b = PoFromOiEdge::from_homogeneous(oi.clone(), h)?;

    // A and B on the lift are independent, as in [`transfer_vertex`]
    let lift_und = lift.lift.underlying_simple();
    let parent_path = obs::current_span_path();
    let (a_res, b_res) = std::thread::scope(|scope| {
        let a = scope.spawn(|| {
            let _adopt = obs::adopt_span_path(&parent_path);
            run::oi_edge(&lift_und, &lift.rank, &oi)
        });
        let b_handle = scope.spawn(|| {
            let _adopt = obs::adopt_span_path(&parent_path);
            run::po_edge(&lift.lift, &b)
        });
        (join_worker(a), join_worker(b_handle))
    });
    let (a_set, b_lift_set) = (a_res?, b_res?);
    let b_g_set = run::po_edge(g, &b)?;

    let g_und = g.underlying_simple();
    let is_feasible = feasible(&g_und, &b_g_set);
    let opt_val = opt(&g_und);
    let ratio = approx_ratio(b_g_set.len(), opt_val, goal);

    Ok((
        EdgeTransferReport {
            lift_nodes: lift.node_count(),
            a_on_lift: a_set.len(),
            b_on_lift: b_lift_set.len(),
            b_on_g: b_g_set,
            feasible: is_feasible,
            ratio,
            opt: opt_val,
        },
        lift,
    ))
}

/// Budget-aware [`transfer_edge`]: runs the three engine passes
/// sequentially under `budget`; a truncated pass aborts the transfer
/// with [`CoreError::Truncated`] naming the stage.
///
/// # Errors
///
/// Same conditions as [`transfer_edge`], plus [`CoreError::Truncated`]
/// when the budget trips.
pub fn transfer_edge_budgeted<A>(
    g: &LDigraph,
    h: &HomogeneousGraph,
    oi: A,
    goal: Goal,
    feasible: impl Fn(&Graph, &BTreeSet<locap_graph::Edge>) -> bool,
    opt: impl Fn(&Graph) -> usize,
    budget: &RunBudget,
) -> Result<(EdgeTransferReport, HomogeneousLift), CoreError>
where
    A: locap_models::OiEdgeAlgorithm + Clone + Send + Sync,
{
    use crate::oi_to_po::PoFromOiEdge;

    let mut span = obs::span("transfer/edge");
    let lift = homogeneous_lift(g, h)?;
    span.arg("lift_nodes", lift.node_count() as i64);
    let b = PoFromOiEdge::from_homogeneous(oi.clone(), h)?;
    let lift_und = lift.lift.underlying_simple();

    let a_set =
        require_complete(run::oi_edge_budgeted(&lift_und, &lift.rank, &oi, budget)?, "A on lift")?;
    let b_lift_set = require_complete(run::po_edge_budgeted(&lift.lift, &b, budget)?, "B on lift")?;
    let b_g_set = require_complete(run::po_edge_budgeted(g, &b, budget)?, "B on base graph")?;

    let g_und = g.underlying_simple();
    let is_feasible = feasible(&g_und, &b_g_set);
    let opt_val = opt(&g_und);
    let ratio = approx_ratio(b_g_set.len(), opt_val, goal);

    Ok((
        EdgeTransferReport {
            lift_nodes: lift.node_count(),
            a_on_lift: a_set.len(),
            b_on_lift: b_lift_set.len(),
            b_on_g: b_g_set,
            feasible: is_feasible,
            ratio,
            opt: opt_val,
        },
        lift,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homogeneous::construct;
    use locap_graph::canon::OrderedNbhd;
    use locap_graph::gen;
    use locap_problems::vertex_cover;

    /// The order-greedy OI vertex cover: a node joins unless it is the
    /// order-minimum of some incident edge... simplest correct variant:
    /// join iff NOT a local order-minimum (the local minima form an
    /// independent set, so the rest is a vertex cover).
    #[derive(Clone)]
    struct NonMinCover;
    impl OiVertexAlgorithm for NonMinCover {
        fn radius(&self) -> usize {
            1
        }
        fn evaluate(&self, t: &OrderedNbhd) -> bool {
            t.root != 0
        }
    }

    #[test]
    fn transfer_vertex_cover_on_directed_cycle() {
        let g = gen::directed_cycle(12);
        let h = construct(1, 1, 10).unwrap();
        let (report, _) = transfer_vertex(
            &g,
            &h,
            NonMinCover,
            Goal::Minimize,
            vertex_cover::feasible,
            vertex_cover::opt_value,
        )
        .unwrap();
        // Fact 4.2: agreement at least the homogeneous fraction
        assert!(report.agreement >= h.fraction(), "agreement {}", report.agreement);
        // B on the cycle: all views identical; the root of τ* is not the
        // minimum, so B selects every node — feasible, ratio 2 on C12.
        assert!(report.feasible);
        assert_eq!(report.b_on_g.len(), 12);
        assert_eq!(report.opt, 6);
        assert_eq!(report.ratio, Some(Ratio::from_int(2)));
    }

    #[test]
    fn transfer_edge_dominating_set() {
        use locap_models::OiEdgeAlgorithm;
        use locap_problems::edge_dominating_set;

        /// OI EDS: every node selects all incident edges (trivially
        /// feasible, ratio bounded by degree considerations).
        #[derive(Clone)]
        struct AllEdges;
        impl OiEdgeAlgorithm for AllEdges {
            fn radius(&self) -> usize {
                1
            }
            fn evaluate(&self, t: &OrderedNbhd) -> Vec<bool> {
                let deg = t.edges.iter().filter(|&&(i, j)| i == t.root || j == t.root).count();
                vec![true; deg]
            }
        }

        let g = gen::directed_cycle(9);
        let h = construct(1, 1, 8).unwrap();
        let (rep, _) = transfer_edge(
            &g,
            &h,
            AllEdges,
            Goal::Minimize,
            edge_dominating_set::feasible,
            edge_dominating_set::opt_value,
        )
        .unwrap();
        assert!(rep.feasible);
        assert_eq!(rep.b_on_g.len(), 9, "all edges selected");
        assert_eq!(rep.opt, 3);
        assert_eq!(rep.ratio, Some(Ratio::from_int(3)), "exactly the 4-2/Δ' bound");
    }

    #[test]
    fn agreement_improves_with_m() {
        let g = gen::directed_cycle(6);
        let h1 = construct(1, 1, 6).unwrap();
        let h2 = construct(1, 1, 12).unwrap();
        let (r1, _) = transfer_vertex(
            &g,
            &h1,
            NonMinCover,
            Goal::Minimize,
            vertex_cover::feasible,
            vertex_cover::opt_value,
        )
        .unwrap();
        let (r2, _) = transfer_vertex(
            &g,
            &h2,
            NonMinCover,
            Goal::Minimize,
            vertex_cover::feasible,
            vertex_cover::opt_value,
        )
        .unwrap();
        assert!(r2.agreement >= r1.agreement);
        assert!(r2.lift_nodes > r1.lift_nodes);
    }
}
