//! `locapd` — the locap batch job daemon.
//!
//! ```text
//! locapd [--addr HOST:PORT] [--workers N] [--queue-depth N]
//!        [--max-frame-bytes N] [--artifact-dir DIR] [--store-dir DIR]
//!        [--default-deadline-ms N] [--max-deadline-ms N] [--no-shutdown]
//!        [--telemetry-interval-ms N] [--telemetry-queue N]
//! ```
//!
//! Binds a TCP listener (default `127.0.0.1:7878`; `:0` picks an
//! ephemeral port), announces `locapd listening on <addr>` on stderr,
//! and serves newline-delimited JSON requests until a `shutdown` op
//! arrives. With `--artifact-dir` every successful pipeline result is
//! written there as `<pipeline>-<id>.json` plus a provenance sidecar.
//! With `--store-dir` results are served from (and written back to) the
//! content-addressed result store rooted there, so repeat requests
//! answer from disk (`store/warm_hit` in `stats`) without recomputing.
//! `subscribe` connections receive delta-encoded telemetry frames every
//! `--telemetry-interval-ms` (0 disables streaming); slow subscribers
//! buffer up to `--telemetry-queue` frames before frames are shed.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::time::Duration;

use locap_serve::daemon::{Daemon, DaemonConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli(&args) {
        Ok(code) => std::process::exit(code),
        Err(msg) => {
            eprintln!("locapd: {msg}");
            eprintln!(
                "usage: locapd [--addr HOST:PORT] [--workers N] [--queue-depth N] \
                 [--max-frame-bytes N] [--artifact-dir DIR] [--store-dir DIR] \
                 [--default-deadline-ms N] [--max-deadline-ms N] [--no-shutdown] \
                 [--telemetry-interval-ms N] [--telemetry-queue N]"
            );
            std::process::exit(2);
        }
    }
}

fn cli(args: &[String]) -> Result<i32, String> {
    let mut addr = String::from("127.0.0.1:7878");
    let mut config = DaemonConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--no-shutdown" {
            config.allow_shutdown = false;
            continue;
        }
        let mut value = || it.next().cloned().ok_or_else(|| format!("flag {flag} needs a value"));
        let parse_usize = |key: &str, v: String| {
            v.parse::<usize>()
                .map_err(|_| format!("--{key} expects a non-negative integer"))
        };
        match flag.as_str() {
            "--addr" => addr = value()?,
            "--workers" => {
                config.workers = parse_usize("workers", value()?)?.max(1);
            }
            "--queue-depth" => {
                config.queue_depth = parse_usize("queue-depth", value()?)?.max(1);
            }
            "--max-frame-bytes" => {
                config.max_frame_bytes = parse_usize("max-frame-bytes", value()?)?.max(2);
            }
            "--artifact-dir" => config.artifact_dir = Some(PathBuf::from(value()?)),
            "--store-dir" => config.store_dir = Some(PathBuf::from(value()?)),
            "--default-deadline-ms" => {
                let ms = parse_usize("default-deadline-ms", value()?)? as u64;
                config.default_deadline = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--max-deadline-ms" => {
                let ms = parse_usize("max-deadline-ms", value()?)? as u64;
                config.max_deadline = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--telemetry-interval-ms" => {
                let ms = parse_usize("telemetry-interval-ms", value()?)? as u64;
                config.telemetry_interval = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--telemetry-queue" => {
                config.telemetry_queue = parse_usize("telemetry-queue", value()?)?.max(1);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }

    if let Some(dir) = &config.artifact_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create artifact dir {}: {e}", dir.display()))?;
    }

    let mut exit = 0;
    locap_bench::run("locapd", "LOCAPD", "batch job daemon", || {
        match Daemon::bind(addr.as_str(), config.clone()) {
            Ok(daemon) => {
                // Stderr, not stdout: keeps the OBS_JSON single-line
                // stdout contract while letting harnesses learn the
                // bound (possibly ephemeral) port.
                eprintln!("locapd listening on {}", daemon.local_addr());
                if let Err(e) = daemon.run() {
                    eprintln!("locapd: serve loop failed: {e}");
                    exit = 1;
                }
            }
            Err(e) => {
                eprintln!("locapd: cannot bind {addr}: {e}");
                exit = 1;
            }
        }
    });
    Ok(exit)
}
