//! The Ramsey ID → OI step — **§4.2** of the paper.
//!
//! The paper colours every t-subset `S` of the identifier space by the
//! *behaviour* of the ID algorithm `A` when the identifiers of the
//! order-homogeneous tree `(T*, <*, λ)` are drawn from `S` in order:
//! `c(S)(W) := A(f_{W,S}((T*, λ) ↾ W))`. Ramsey's theorem gives arbitrarily
//! large monochromatic sets `J`; *inside `J`, `A` cannot react to the
//! numeric values of the identifiers at all* — it behaves like an OI
//! algorithm, and the OI → PO machinery applies.
//!
//! The paper's Ramsey numbers are astronomically large, but the
//! construction itself is finite and exact: [`monochromatic_subset`]
//! searches a concrete identifier universe for a `J` on which a concrete
//! colouring is monochromatic, and [`OiFromId`] is the induced OI
//! algorithm `B` (evaluate `A` with identifiers drawn from `J` in order).
//! DESIGN.md substitution #2 records the scope: for toy parameters (paths
//! and cycles: `t = 2r + 1`, one relevant `W`) the search is fast and the
//! resulting `B` provably agrees with `A` on every neighbourhood whose
//! identifiers come from `J`.

use std::collections::BTreeSet;

use locap_graph::budget::RunBudget;
use locap_graph::canon::{IdNbhd, OrderedNbhd};
use locap_models::{IdVertexAlgorithm, OiVertexAlgorithm};
use locap_obs as obs;

use crate::CoreError;

/// Searches `universe` for an `m`-subset `J` all of whose `t`-subsets have
/// the same colour. Returns `(J, colour)` on success.
///
/// The search is exact (DFS with incremental consistency checks); its cost
/// grows quickly with `t` and `m`, matching the combinatorial reality the
/// paper leans on.
pub fn monochromatic_subset<C, F>(
    color: &mut F,
    universe: &[u64],
    t: usize,
    m: usize,
) -> Option<(Vec<u64>, C)>
where
    C: Eq + Clone,
    F: FnMut(&[u64]) -> C,
{
    // an unlimited budget never truncates, so the Err arm is unreachable
    monochromatic_subset_budgeted(color, universe, t, m, &RunBudget::unlimited()).unwrap_or(None)
}

/// Budget-aware [`monochromatic_subset`]: the DFS checks the deadline at
/// every node expansion. A truncated search proves nothing about the
/// universe (the subset may exist further along), so it reports
/// [`CoreError::Truncated`] instead of `Ok(None)`.
///
/// # Errors
///
/// [`CoreError::Truncated`] when the budget trips mid-search.
pub fn monochromatic_subset_budgeted<C, F>(
    color: &mut F,
    universe: &[u64],
    t: usize,
    m: usize,
    budget: &RunBudget,
) -> Result<Option<(Vec<u64>, C)>, CoreError>
where
    C: Eq + Clone,
    F: FnMut(&[u64]) -> C,
{
    let _span = obs::span_with(
        "ramsey/monochromatic_subset",
        &[("universe", universe.len() as i64), ("t", t as i64), ("m", m as i64)],
    );
    if m < t || universe.len() < m {
        return Ok(None);
    }
    let mut sorted: Vec<u64> = universe.to_vec();
    sorted.sort_unstable();
    sorted.dedup();

    // DFS state bundled so the recursion stays readable: `sorted`, `t`,
    // `m`, `budget` are fixed for the whole search, `partial`/`expected`
    // are the backtracking state.
    struct Search<'a, C, F> {
        sorted: &'a [u64],
        t: usize,
        m: usize,
        budget: &'a RunBudget,
        color: &'a mut F,
        partial: Vec<u64>,
        expected: Option<C>,
    }

    impl<C: Eq + Clone, F: FnMut(&[u64]) -> C> Search<'_, C, F> {
        fn extend(&mut self, start: usize) -> Result<bool, CoreError> {
            if self.partial.len() == self.m {
                return Ok(true);
            }
            if let Some(tr) = self.budget.check_interrupt() {
                return Err(CoreError::Truncated { stage: "Ramsey search", reason: tr.publish() });
            }
            for i in start..self.sorted.len() {
                if self.sorted.len() - i < self.m - self.partial.len() {
                    break;
                }
                let saved = self.expected.clone();
                self.partial.push(self.sorted[i]);
                // check every new t-subset (those containing the new element)
                let ok = if self.partial.len() < self.t {
                    true
                } else {
                    let (color, expected) = (&mut self.color, &mut self.expected);
                    all_t_subsets_with_last(&self.partial, self.t, |s| {
                        let c = color(s);
                        match expected {
                            None => {
                                *expected = Some(c);
                                true
                            }
                            Some(e) => *e == c,
                        }
                    })
                };
                if ok && self.extend(i + 1)? {
                    return Ok(true);
                }
                self.partial.pop();
                self.expected = saved;
            }
            Ok(false)
        }
    }

    let mut search =
        Search { sorted: &sorted, t, m, budget, color, partial: Vec::new(), expected: None };
    if search.extend(0)? {
        let Search { partial, expected, color, .. } = search;
        let c = expected.unwrap_or_else(|| color(&partial[..t]));
        Ok(Some((partial, c)))
    } else {
        Ok(None)
    }
}

/// Calls `f` on every `t`-subset of `set` that contains the last element;
/// returns whether all calls returned `true`.
fn all_t_subsets_with_last(set: &[u64], t: usize, mut f: impl FnMut(&[u64]) -> bool) -> bool {
    let Some(&last) = set.last() else {
        return true; // an empty set has no t-subsets
    };
    let rest = &set[..set.len() - 1];
    let mut idx: Vec<usize> = (0..t - 1).collect();
    if rest.len() < t - 1 {
        return true;
    }
    loop {
        let mut subset: Vec<u64> = idx.iter().map(|&i| rest[i]).collect();
        subset.push(last);
        subset.sort_unstable();
        if !f(&subset) {
            return false;
        }
        // advance combination
        let mut i = t - 1;
        loop {
            if i == 0 {
                return true;
            }
            i -= 1;
            if idx[i] < rest.len() - (t - 1 - i) {
                idx[i] += 1;
                for j in i + 1..t - 1 {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// The OI algorithm `B` induced by an ID algorithm `A` and an identifier
/// pool `J`: evaluate `A` with the `|ball|` smallest members of `J`
/// assigned to the ball in order (the paper's `f_{W,S}` with `S ⊆ J`).
///
/// `evaluate` panics if a ball exceeds the pool — the pool size is a
/// construction-time contract (`|J| ≥` the largest ball the run can
/// produce), not a per-input condition.
#[derive(Debug, Clone)]
pub struct OiFromId<A> {
    id_algo: A,
    pool: Vec<u64>,
}

impl<A> OiFromId<A> {
    /// Wraps `id_algo` with the identifier pool `j` (sorted, deduplicated).
    ///
    /// # Errors
    ///
    /// Fails if the pool is empty.
    pub fn new(id_algo: A, j: &[u64]) -> Result<OiFromId<A>, CoreError> {
        let mut pool: Vec<u64> = j.to_vec();
        pool.sort_unstable();
        pool.dedup();
        if pool.is_empty() {
            return Err(CoreError::BadParameters { reason: "empty identifier pool".into() });
        }
        Ok(OiFromId { id_algo, pool })
    }

    /// The pool `J`.
    pub fn pool(&self) -> &[u64] {
        &self.pool
    }
}

impl<A: IdVertexAlgorithm> OiVertexAlgorithm for OiFromId<A> {
    fn radius(&self) -> usize {
        self.id_algo.radius()
    }

    fn evaluate(&self, t: &OrderedNbhd) -> bool {
        let n = t.n as usize;
        assert!(
            n <= self.pool.len(),
            "identifier pool too small: ball has {n} nodes, pool {}",
            self.pool.len()
        );
        let nbhd = IdNbhd { ids: self.pool[..n].to_vec(), root: t.root, edges: t.edges.clone() };
        self.id_algo.evaluate(&nbhd)
    }
}

/// The colouring of §4.2 specialised to cycles: for a t-subset `S`
/// (`t = 2r + 1`), run `A` at the centre of a path ball whose identifiers
/// are `S` in increasing order along the path — that is `f_{W,S}` applied
/// to the homogeneity type of the ordered cycle.
///
/// # Panics
///
/// Panics if `s.len()` is even — the window of a radius-`r` cycle ball
/// always has odd size `2r + 1`, so an even `t` is a caller bug.
pub fn cycle_tstar_color<A: IdVertexAlgorithm>(algo: &A, s: &[u64]) -> bool {
    let t = s.len();
    assert!(t % 2 == 1, "t = 2r + 1 must be odd");
    let mut ids = s.to_vec();
    ids.sort_unstable();
    let edges: Vec<(u32, u32)> = (0..t - 1).map(|i| (i as u32, i as u32 + 1)).collect();
    let nbhd = IdNbhd { ids, root: (t / 2) as u32, edges };
    algo.evaluate(&nbhd)
}

/// A successful §4.2 transfer: the induced OI algorithm, the
/// monochromatic identifier set `J`, and the forced output bit.
pub type CycleTransfer<A> = (OiFromId<A>, Vec<u64>, bool);

/// End-to-end §4.2 for cycles: find a monochromatic `J ⊆ universe` for the
/// colouring of `algo` at radius `r`, and return the induced OI algorithm
/// together with `J` and the forced output bit.
pub fn ramsey_cycle_transfer<A>(
    algo: A,
    universe: &[u64],
    r: usize,
    m: usize,
) -> Option<CycleTransfer<A>>
where
    A: IdVertexAlgorithm + Clone,
{
    ramsey_cycle_transfer_budgeted(algo, universe, r, m, &RunBudget::unlimited()).unwrap_or(None)
}

/// Budget-aware [`ramsey_cycle_transfer`]: the underlying Ramsey search
/// checks the deadline at every DFS node.
///
/// # Errors
///
/// [`CoreError::Truncated`] when the budget trips mid-search.
pub fn ramsey_cycle_transfer_budgeted<A>(
    algo: A,
    universe: &[u64],
    r: usize,
    m: usize,
    budget: &RunBudget,
) -> Result<Option<CycleTransfer<A>>, CoreError>
where
    A: IdVertexAlgorithm + Clone,
{
    let _span = obs::span_with("ramsey/cycle_transfer", &[("r", r as i64), ("m", m as i64)]);
    let t = 2 * r + 1;
    let algo_ref = algo.clone();
    let mut color = move |s: &[u64]| cycle_tstar_color(&algo_ref, s);
    let Some((j, bit)) = monochromatic_subset_budgeted(&mut color, universe, t, m, budget)? else {
        return Ok(None);
    };
    match OiFromId::new(algo, &j) {
        Ok(oi) => Ok(Some((oi, j, bit))),
        Err(_) => Ok(None), // unreachable: J has m ≥ t ≥ 1 members
    }
}

/// Checks that `A` behaves order-invariantly on identifier assignments
/// drawn from `J`: for every `t`-subset used as a window, the colour is
/// the monochromatic one.
pub fn verify_monochromatic<A: IdVertexAlgorithm>(
    algo: &A,
    j: &[u64],
    r: usize,
    expected: bool,
) -> bool {
    let t = 2 * r + 1;
    let sorted: BTreeSet<u64> = j.iter().copied().collect();
    let v: Vec<u64> = sorted.into_iter().collect();
    // exhaustively test all t-subsets
    fn rec<A: IdVertexAlgorithm>(
        v: &[u64],
        start: usize,
        cur: &mut Vec<u64>,
        t: usize,
        algo: &A,
        expected: bool,
    ) -> bool {
        if cur.len() == t {
            return cycle_tstar_color(algo, cur) == expected;
        }
        for i in start..v.len() {
            cur.push(v[i]);
            if !rec(v, i + 1, cur, t, algo, expected) {
                return false;
            }
            cur.pop();
        }
        true
    }
    rec(&v, 0, &mut Vec::new(), t, algo, expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Order-invariant: joins iff the centre is the ball's id-maximum.
    #[derive(Clone)]
    struct LocalMax;
    impl IdVertexAlgorithm for LocalMax {
        fn radius(&self) -> usize {
            1
        }
        fn evaluate(&self, t: &IdNbhd) -> bool {
            t.root as usize == t.ids.len() - 1
        }
    }

    /// Value-sensitive: joins iff the centre's identifier is even.
    #[derive(Clone)]
    struct EvenId;
    impl IdVertexAlgorithm for EvenId {
        fn radius(&self) -> usize {
            1
        }
        fn evaluate(&self, t: &IdNbhd) -> bool {
            t.ids[t.root as usize] % 2 == 0
        }
    }

    #[test]
    fn invariant_algorithm_everything_monochromatic() {
        let universe: Vec<u64> = (1..=30).collect();
        let (oi, j, bit) = ramsey_cycle_transfer(LocalMax, &universe, 1, 10).unwrap();
        assert_eq!(j.len(), 10);
        // centre of an increasing path is never the maximum
        assert!(!bit);
        assert!(verify_monochromatic(&LocalMax, &j, 1, bit));
        assert_eq!(oi.pool().len(), 10);
    }

    #[test]
    fn value_sensitive_algorithm_forced_invariant_inside_j() {
        // EvenId's colour is the parity of the middle element; Ramsey finds
        // a J whose middles all share parity (e.g. all-even J works).
        let universe: Vec<u64> = (1..=40).collect();
        let (_, j, bit) = ramsey_cycle_transfer(EvenId, &universe, 1, 8).unwrap();
        assert!(verify_monochromatic(&EvenId, &j, 1, bit));
        // inside J the algorithm *is* order-invariant even though it is not
        // globally: every t-window gives the same output
    }

    #[test]
    fn monochromatic_subset_simple_coloring() {
        // colour = sum mod 2; J of all-even numbers is monochromatic
        let mut color = |s: &[u64]| s.iter().sum::<u64>() % 2;
        let universe: Vec<u64> = (1..=20).collect();
        let (j, c) = monochromatic_subset(&mut color, &universe, 2, 6).unwrap();
        assert_eq!(j.len(), 6);
        // verify by hand
        for i in 0..6 {
            for k in (i + 1)..6 {
                assert_eq!((j[i] + j[k]) % 2, c);
            }
        }
    }

    #[test]
    fn no_subset_when_universe_too_small() {
        let mut color = |s: &[u64]| s.iter().sum::<u64>() % 2;
        assert!(monochromatic_subset(&mut color, &[1, 2, 3], 2, 5).is_none());
    }

    #[test]
    fn constant_coloring_takes_prefix() {
        let mut color = |_: &[u64]| 0u8;
        let universe: Vec<u64> = (1..=10).collect();
        let (j, _) = monochromatic_subset(&mut color, &universe, 3, 7).unwrap();
        assert_eq!(j, (1..=7).collect::<Vec<u64>>());
    }

    #[test]
    fn oi_from_id_matches_id_on_pool_windows() {
        let j: Vec<u64> = vec![2, 4, 6, 8, 10];
        let oi = OiFromId::new(LocalMax, &j).unwrap();
        // an ordered path ball of 3 nodes with root at position 2
        let nbhd = OrderedNbhd { n: 3, root: 2, edges: vec![(0, 1), (1, 2)] };
        assert!(oi.evaluate(&nbhd), "root is order-max so LocalMax joins");
        let nbhd = OrderedNbhd { n: 3, root: 1, edges: vec![(0, 1), (1, 2)] };
        assert!(!oi.evaluate(&nbhd));
    }

    #[test]
    #[should_panic(expected = "pool too small")]
    fn pool_too_small_panics() {
        let oi = OiFromId::new(LocalMax, &[5]).unwrap();
        let nbhd = OrderedNbhd { n: 3, root: 1, edges: vec![(0, 1), (1, 2)] };
        let _ = oi.evaluate(&nbhd);
    }
}
