//! End-to-end tests of the main theorem pipeline: ID → OI (Ramsey) →
//! PO (homogeneous lifts + simulation) → lower bounds.

use locap_core::homogeneous::construct;
use locap_core::oi_to_po::PoFromOi;
use locap_core::ramsey::{ramsey_cycle_transfer, verify_monochromatic, OiFromId};
use locap_core::transfer::transfer_vertex;
use locap_graph::canon::{IdNbhd, OrderedNbhd};
use locap_graph::gen;
use locap_models::{run, IdVertexAlgorithm, OiVertexAlgorithm};
use locap_problems::{vertex_cover, Goal};

#[derive(Clone)]
struct NonMinCover;
impl OiVertexAlgorithm for NonMinCover {
    fn radius(&self) -> usize {
        1
    }
    fn evaluate(&self, t: &OrderedNbhd) -> bool {
        t.root != 0
    }
}

#[derive(Clone)]
struct LocalMinIs;
impl OiVertexAlgorithm for LocalMinIs {
    fn radius(&self) -> usize {
        1
    }
    fn evaluate(&self, t: &OrderedNbhd) -> bool {
        t.root == 0
    }
}

/// Fact 4.2 quantitatively: agreement ≥ homogeneous fraction, for two
/// problems and several ε.
#[test]
fn fact_4_2_agreement_bounds() {
    let g = gen::directed_cycle(15);
    for m in [6u64, 10, 16] {
        let h = construct(1, 1, m).unwrap();
        let (rep, _) = transfer_vertex(
            &g,
            &h,
            NonMinCover,
            Goal::Minimize,
            vertex_cover::feasible,
            vertex_cover::opt_value,
        )
        .unwrap();
        assert!(
            rep.agreement >= h.fraction(),
            "m={m}: agreement {} < fraction {}",
            rep.agreement,
            h.fraction()
        );
        assert!(rep.feasible);
    }
}

/// The simulation turns the OI independent-set algorithm into a PO
/// algorithm that is *empty* on symmetric cycles — the forced outcome that
/// proves PO cannot approximate maximum IS (paper §1.4).
#[test]
fn is_simulation_forced_empty_on_cycles() {
    let h = construct(1, 1, 8).unwrap();
    let b = PoFromOi::from_homogeneous(LocalMinIs, &h).unwrap();
    for n in [5usize, 9, 14] {
        let g = gen::directed_cycle(n);
        let out = run::po_vertex(&g, &b).unwrap();
        assert!(out.iter().all(|&x| !x), "n={n}: B must be constant-empty");
    }
}

/// ID → OI → PO composed: a value-sensitive ID algorithm is forced
/// order-invariant inside a monochromatic J, and the induced OI algorithm
/// feeds the OI → PO simulation without panicking.
#[test]
fn id_to_oi_to_po_composition() {
    #[derive(Clone)]
    struct SumParity;
    impl IdVertexAlgorithm for SumParity {
        fn radius(&self) -> usize {
            1
        }
        fn evaluate(&self, t: &IdNbhd) -> bool {
            t.ids.iter().sum::<u64>() % 2 == 0
        }
    }

    let universe: Vec<u64> = (1..=60).collect();
    let (oi, j, bit) = ramsey_cycle_transfer(SumParity, &universe, 1, 8)
        .expect("monochromatic J exists in a 60-element universe");
    assert!(verify_monochromatic(&SumParity, &j, 1, bit));

    // compose with OI→PO
    let h = construct(1, 1, 6).unwrap();
    let b = PoFromOi::from_homogeneous(oi, &h).unwrap();
    let g = gen::directed_cycle(10);
    let out = run::po_vertex(&g, &b).unwrap();
    // constant on the symmetric cycle, and equal to the forced bit
    assert!(out.iter().all(|&x| x == out[0]));
    assert_eq!(out[0], bit, "B's constant equals the Ramsey-forced colour");
}

/// The OiFromId wrapper is faithful: on order-isomorphic neighbourhoods it
/// returns what the ID algorithm returns on the J-window.
#[test]
fn oi_from_id_faithful() {
    #[derive(Clone)]
    struct RootIsSecond;
    impl IdVertexAlgorithm for RootIsSecond {
        fn radius(&self) -> usize {
            1
        }
        fn evaluate(&self, t: &IdNbhd) -> bool {
            t.root == 1
        }
    }
    let oi = OiFromId::new(RootIsSecond, &[10, 20, 30, 40]).unwrap();
    let mid = OrderedNbhd { n: 3, root: 1, edges: vec![(0, 1), (1, 2)] };
    let lo = OrderedNbhd { n: 3, root: 0, edges: vec![(0, 1), (0, 2)] };
    assert!(oi.evaluate(&mid));
    assert!(!oi.evaluate(&lo));
}

/// Approximation preservation (the |B(G)|/|X| calculation of Thm 4.1):
/// B's measured ratio on the base graph never exceeds A's measured ratio
/// on the lift by more than the (1 − ε|G|)⁻¹ slack — here checked in the
/// exact form ratio_B ≤ ratio_A / agreement-deficit-free bound for the
/// concrete instances.
#[test]
fn approximation_preserved_through_simulation() {
    let g = gen::directed_cycle(12);
    let h = construct(1, 1, 16).unwrap();
    let (rep, lift) = transfer_vertex(
        &g,
        &h,
        NonMinCover,
        Goal::Minimize,
        vertex_cover::feasible,
        vertex_cover::opt_value,
    )
    .unwrap();
    // A's cover on the lift
    let lift_und = lift.lift.underlying_simple();
    let a_out = run::oi_vertex(&lift_und, &lift.rank, &NonMinCover).unwrap();
    let a_size = a_out.iter().filter(|&&x| x).count();
    let a_feasible = vertex_cover::feasible(&lift_und, &run::to_vertex_set(&a_out));
    assert!(a_feasible, "A is a vertex cover on the lift");
    // Fact 4.3-style accounting: |A| >= agreement-weighted |B|
    assert!(a_size as f64 >= rep.agreement.to_f64() * rep.b_on_lift as f64 - 1e-9);
    assert!(rep.feasible);
}
