//! Failure injection: every verifier in the stack must *reject* doctored
//! inputs, and every engine and pipeline must turn malformed inputs and
//! exhausted budgets into typed errors — never a panic, never a silently
//! wrong answer. A reproduction whose checks cannot fail checks nothing.
//!
//! Layout:
//! * `engine_faults` — each malformed-input class through each of the six
//!   `run::*` entry points;
//! * `simulator_faults` — the same classes through `run_sync`;
//! * `budget_truncation` — round caps, manual-clock deadlines, and cache
//!   caps across engines, simulator, and every pipeline;
//! * `obs_visibility` — the `errors/run/*` and `budget/truncated/*`
//!   counters these paths publish appear in OBS_JSON snapshots;
//! * the original doctored-structure tests (verifiers must reject).

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use locap_core::eds_lower::{eds_instance, lower_bound_report, EdsInstance};
use locap_core::homogeneous::construct;
use locap_core::CoreError;
use locap_graph::budget::{ManualClock, RunBudget, TruncationReason};
use locap_graph::canon::{IdNbhd, OrderedNbhd};
use locap_graph::{gen, Edge, PoGraph};
use locap_lifts::{trivial_lift, CoveringMap, Letter, ViewTree};
use locap_models::checkable::verifiers::*;
use locap_models::checkable::{verify_edge, verify_vertex};
use locap_models::{
    run, IdEdgeAlgorithm, IdVertexAlgorithm, OiEdgeAlgorithm, OiVertexAlgorithm, PoEdgeAlgorithm,
    PoVertexAlgorithm, RunError,
};

/// A budget whose manual clock is already past its deadline: every
/// `check_deadline` trips immediately and deterministically.
fn expired_deadline() -> RunBudget {
    let clock = Arc::new(ManualClock::new());
    clock.set(Duration::from_secs(60));
    RunBudget::unlimited().with_deadline(Duration::from_millis(1), clock)
}

#[derive(Clone)]
struct IdMax;
impl IdVertexAlgorithm for IdMax {
    fn radius(&self) -> usize {
        1
    }
    fn evaluate(&self, t: &IdNbhd) -> bool {
        t.root as usize == t.ids.len() - 1
    }
}

#[derive(Clone)]
struct OiMin;
impl OiVertexAlgorithm for OiMin {
    fn radius(&self) -> usize {
        1
    }
    fn evaluate(&self, t: &OrderedNbhd) -> bool {
        t.root == 0
    }
}

#[derive(Clone)]
struct PoParity;
impl PoVertexAlgorithm for PoParity {
    fn radius(&self) -> usize {
        1
    }
    fn evaluate(&self, v: &ViewTree) -> bool {
        v.size() % 2 == 0
    }
}

/// Returns one bit too many at every node: a wrong-output-length fault.
#[derive(Clone)]
struct IdEdgeTooWide;
impl IdEdgeAlgorithm for IdEdgeTooWide {
    fn radius(&self) -> usize {
        1
    }
    fn evaluate(&self, t: &IdNbhd) -> Vec<bool> {
        vec![true; t.ids.len() + 7]
    }
}

#[derive(Clone)]
struct OiEdgeOneBit;
impl OiEdgeAlgorithm for OiEdgeOneBit {
    fn radius(&self) -> usize {
        1
    }
    fn evaluate(&self, _t: &OrderedNbhd) -> Vec<bool> {
        vec![true]
    }
}

/// Selects a letter no node of a one-letter digraph has.
#[derive(Clone)]
struct PoAbsentLetter;
impl PoEdgeAlgorithm for PoAbsentLetter {
    fn radius(&self) -> usize {
        1
    }
    fn evaluate(&self, _view: &ViewTree) -> Vec<(Letter, bool)> {
        vec![(Letter::neg(7), true)]
    }
}

mod engine_faults {
    use super::*;

    #[test]
    fn short_ids_rejected_by_both_id_engines() {
        let g = gen::cycle(8);
        let ids: Vec<u64> = (0..5).collect();
        for res in [run::id_vertex(&g, &ids, &IdMax), run::id_vertex_naive(&g, &ids, &IdMax)] {
            assert!(matches!(
                res,
                Err(RunError::InputLengthMismatch { what: "ids", expected: 8, actual: 5 })
            ));
        }
        assert!(matches!(
            run::id_edge(&g, &ids, &IdEdgeTooWide),
            Err(RunError::InputLengthMismatch { what: "ids", .. })
        ));
    }

    #[test]
    fn short_rank_rejected_by_both_oi_engines() {
        let g = gen::cycle(8);
        let rank: Vec<usize> = (0..3).collect();
        for res in [run::oi_vertex(&g, &rank, &OiMin), run::oi_vertex_naive(&g, &rank, &OiMin)] {
            assert!(matches!(
                res,
                Err(RunError::InputLengthMismatch { what: "rank", expected: 8, actual: 3 })
            ));
        }
        assert!(matches!(
            run::oi_edge(&g, &rank, &OiEdgeOneBit),
            Err(RunError::InputLengthMismatch { what: "rank", .. })
        ));
    }

    #[test]
    fn wrong_edge_output_length_is_typed() {
        let g = gen::cycle(6);
        let ids: Vec<u64> = (0..6).collect();
        let rank: Vec<usize> = (0..6).collect();
        assert!(matches!(
            run::id_edge(&g, &ids, &IdEdgeTooWide),
            Err(RunError::OutputLengthMismatch { expected: 2, .. })
        ));
        assert!(matches!(
            run::oi_edge(&g, &rank, &OiEdgeOneBit),
            Err(RunError::OutputLengthMismatch { expected: 2, actual: 1, .. })
        ));
    }

    #[test]
    fn po_edge_absent_letter_is_typed() {
        let d = gen::directed_cycle(6);
        for res in [run::po_edge(&d, &PoAbsentLetter), run::po_edge_naive(&d, &PoAbsentLetter)] {
            assert!(matches!(res, Err(RunError::AbsentLetter { .. })));
        }
    }

    #[test]
    fn healthy_runs_stay_ok() {
        let g = gen::cycle(8);
        let ids: Vec<u64> = (10..18).collect();
        let rank: Vec<usize> = (0..8).collect();
        let d = gen::directed_cycle(8);
        assert_eq!(run::id_vertex(&g, &ids, &IdMax).unwrap().len(), 8);
        assert_eq!(run::oi_vertex(&g, &rank, &OiMin).unwrap().len(), 8);
        assert_eq!(run::po_vertex(&d, &PoParity).unwrap().len(), 8);
    }
}

mod simulator_faults {
    use super::*;
    use locap_algos::cole_vishkin::{cycle_mis, cycle_orientation, ColorReduce};
    use locap_graph::PortNumbering;
    use locap_models::sim::{run_sync, run_sync_budgeted, GossipIds};

    #[test]
    fn anonymous_run_of_id_algorithm_is_missing_ids() {
        let g = gen::cycle(6);
        let ports = PortNumbering::sorted(&g);
        let res = run_sync(&g, &ports, None, None, &GossipIds { rounds: 1 }, 4);
        assert!(matches!(res, Err(RunError::MissingIds)));
    }

    #[test]
    fn short_ids_rejected_before_round_zero() {
        let g = gen::cycle(6);
        let ports = PortNumbering::sorted(&g);
        let ids: Vec<u64> = (0..4).collect();
        let res = run_sync(&g, &ports, Some(&ids), None, &GossipIds { rounds: 1 }, 4);
        assert!(matches!(res, Err(RunError::InputLengthMismatch { what: "ids", .. })));
    }

    #[test]
    fn foreign_port_numbering_rejected() {
        let g = gen::cycle(6);
        let ports = PortNumbering::sorted(&gen::cycle(9));
        let ids: Vec<u64> = (0..6).collect();
        let res = run_sync(&g, &ports, Some(&ids), None, &GossipIds { rounds: 1 }, 4);
        assert!(matches!(res, Err(RunError::InputLengthMismatch { what: "ports", .. })));
    }

    #[test]
    fn unoriented_run_of_po_style_algorithm_is_missing_orientation() {
        let g = gen::cycle(6);
        let ports = PortNumbering::sorted(&g);
        let ids: Vec<u64> = (0..6).collect();
        let res = run_sync(&g, &ports, Some(&ids), None, &ColorReduce { rounds: 1 }, 4);
        assert!(matches!(res, Err(RunError::MissingOrientation)));
    }

    #[test]
    fn degree_precondition_is_unsupported_not_panic() {
        // cycle_mis on a path: endpoints have degree 1
        let g = gen::path(5);
        let ids: Vec<u64> = (0..5).collect();
        assert!(matches!(cycle_mis(&g, &ids), Err(RunError::Unsupported { .. })));
    }

    #[test]
    fn round_cap_yields_partial_result_not_hang() {
        let g = gen::cycle(8);
        let ports = PortNumbering::sorted(&g);
        let ids: Vec<u64> = (0..8).collect();
        let orient = cycle_orientation(&g);
        let budget = RunBudget::unlimited().with_max_rounds(1);
        // needs `rounds` + propagation, so 1 round cannot finish
        let res = run_sync_budgeted(
            &g,
            &ports,
            Some(&ids),
            Some(&orient),
            None,
            &ColorReduce { rounds: 6 },
            &budget,
        )
        .unwrap();
        assert!(!res.all_halted);
        assert_eq!(res.rounds, 1);
        assert!(matches!(res.truncation, Some(TruncationReason::RoundLimit { limit: 1 })));
        assert_eq!(res.states.len(), 8, "partial states still cover every node");
    }

    #[test]
    fn manual_deadline_trips_immediately() {
        let g = gen::cycle(8);
        let ports = PortNumbering::sorted(&g);
        let ids: Vec<u64> = (0..8).collect();
        let res = run_sync_budgeted(
            &g,
            &ports,
            Some(&ids),
            None,
            None,
            &GossipIds { rounds: 5 },
            &expired_deadline(),
        )
        .unwrap();
        assert!(matches!(res.truncation, Some(TruncationReason::DeadlineExceeded { .. })));
        assert_eq!(res.rounds, 0, "no round completes past an expired deadline");
    }
}

mod budget_truncation {
    use super::*;
    use locap_core::eds_lower;
    use locap_core::hom_lift::homogeneous_lift_budgeted;
    use locap_core::homogeneous::construct_budgeted;
    use locap_core::ramsey::{monochromatic_subset_budgeted, ramsey_cycle_transfer_budgeted};
    use locap_core::transfer::{transfer_edge_budgeted, transfer_vertex_budgeted};
    use locap_problems::{edge_dominating_set, vertex_cover, Goal};

    #[test]
    fn engines_truncate_on_cache_cap() {
        let g = gen::cycle(12);
        let ids: Vec<u64> = (0..12).collect();
        let rank: Vec<usize> = (0..12).collect();
        let d = gen::directed_cycle(12);
        let budget = RunBudget::unlimited().with_cache_cap(1);
        let id = run::id_vertex_budgeted(&g, &ids, &IdMax, &budget).unwrap();
        assert!(matches!(id.truncation, Some(TruncationReason::CacheCapExceeded { cap: 1, .. })));
        let oi = run::oi_vertex_budgeted(&g, &rank, &OiMin, &budget).unwrap();
        assert!(!oi.is_complete());
        let po = run::po_vertex_budgeted(&d, &PoParity, &budget).unwrap();
        assert!(matches!(po.truncation, Some(TruncationReason::CacheCapExceeded { .. })));
    }

    #[test]
    fn engines_truncate_on_deadline_with_empty_prefix() {
        let g = gen::cycle(12);
        let ids: Vec<u64> = (0..12).collect();
        let rank: Vec<usize> = (0..12).collect();
        let budget = expired_deadline();
        let id = run::id_vertex_budgeted(&g, &ids, &IdMax, &budget).unwrap();
        assert!(matches!(id.truncation, Some(TruncationReason::DeadlineExceeded { .. })));
        assert!(id.value.len() < 12, "expired deadline cannot complete all vertices");
        let oi = run::oi_vertex_budgeted(&g, &rank, &OiMin, &budget).unwrap();
        assert!(!oi.is_complete());
    }

    #[test]
    fn truncated_prefix_agrees_with_full_run() {
        let g = gen::cycle(12);
        let ids: Vec<u64> = (0..12).collect();
        let budget = RunBudget::unlimited().with_cache_cap(2);
        let partial = run::id_vertex_budgeted(&g, &ids, &IdMax, &budget).unwrap();
        let full = run::id_vertex(&g, &ids, &IdMax).unwrap();
        assert!(
            partial.value.iter().zip(&full).all(|(a, b)| a == b),
            "a truncated run must be a prefix of the full answer, never a wrong answer"
        );
    }

    #[test]
    fn transfer_pipelines_truncate_with_stage() {
        let g = gen::directed_cycle(6);
        let h = construct(1, 1, 6).unwrap();
        let res = transfer_vertex_budgeted(
            &g,
            &h,
            OiMin,
            Goal::Minimize,
            vertex_cover::feasible,
            vertex_cover::opt_value,
            &expired_deadline(),
        );
        assert!(matches!(res, Err(CoreError::Truncated { stage: "A on lift", .. })));

        #[derive(Clone)]
        struct AllEdges;
        impl OiEdgeAlgorithm for AllEdges {
            fn radius(&self) -> usize {
                1
            }
            fn evaluate(&self, t: &OrderedNbhd) -> Vec<bool> {
                vec![true; t.edges.iter().filter(|&&(a, b)| a == t.root || b == t.root).count()]
            }
        }
        let res = transfer_edge_budgeted(
            &g,
            &h,
            AllEdges,
            Goal::Minimize,
            edge_dominating_set::feasible,
            edge_dominating_set::opt_value,
            &expired_deadline(),
        );
        assert!(matches!(res, Err(CoreError::Truncated { stage: "A on lift", .. })));
    }

    #[test]
    fn eds_report_truncates_on_cache_cap_and_deadline() {
        let inst = eds_instance(2, 9).unwrap();
        let res = eds_lower::lower_bound_report_budgeted(
            &inst,
            &RunBudget::unlimited().with_cache_cap(1),
        );
        assert!(matches!(res, Err(CoreError::Truncated { stage: "view census", .. })));
        let res = eds_lower::lower_bound_report_budgeted(&inst, &expired_deadline());
        assert!(matches!(res, Err(CoreError::Truncated { .. })));
    }

    #[test]
    fn homogeneous_construction_truncates_on_deadline() {
        let res = construct_budgeted(1, 1, 6, &expired_deadline());
        assert!(matches!(res, Err(CoreError::Truncated { stage: "generator search", .. })));
    }

    #[test]
    fn homogeneous_lift_truncates_on_deadline() {
        let g = gen::directed_cycle(3);
        let h = construct(1, 1, 6).unwrap();
        let res = homogeneous_lift_budgeted(&g, &h, &expired_deadline());
        assert!(matches!(res, Err(CoreError::Truncated { .. })));
    }

    #[test]
    fn ramsey_search_truncates_instead_of_reporting_absence() {
        let universe: Vec<u64> = (1..=30).collect();
        let mut color = |s: &[u64]| s.iter().sum::<u64>() % 2;
        let res = monochromatic_subset_budgeted(&mut color, &universe, 2, 6, &expired_deadline());
        assert!(matches!(res, Err(CoreError::Truncated { stage: "Ramsey search", .. })));
        let res = ramsey_cycle_transfer_budgeted(IdMax, &universe, 1, 8, &expired_deadline());
        assert!(matches!(res, Err(CoreError::Truncated { .. })));
        // and with room to breathe, the same search succeeds
        assert!(ramsey_cycle_transfer_budgeted(IdMax, &universe, 1, 8, &RunBudget::unlimited())
            .unwrap()
            .is_some());
    }
}

/// The cancellation axis (the serving layer's disconnect path): a
/// tripped [`CancelToken`] must stop engines and pipelines exactly like
/// an expired deadline, as a typed `Cancelled` truncation.
mod cancellation_faults {
    use super::*;
    use locap_core::eds_lower;
    use locap_core::homogeneous::construct_budgeted;
    use locap_core::request::PipelineRequest;
    use locap_graph::budget::CancelToken;
    use locap_obs::json::Json;

    fn cancelled_budget() -> (CancelToken, RunBudget) {
        let token = CancelToken::new();
        token.cancel();
        (token.clone(), RunBudget::unlimited().with_cancel(token))
    }

    #[test]
    fn engines_truncate_on_cancellation_with_empty_prefix() {
        let g = gen::cycle(12);
        let ids: Vec<u64> = (0..12).collect();
        let (_, budget) = cancelled_budget();
        let id = run::id_vertex_budgeted(&g, &ids, &IdMax, &budget).unwrap();
        assert!(matches!(id.truncation, Some(TruncationReason::Cancelled)));
        assert!(id.value.len() < 12, "a cancelled run cannot complete all vertices");
    }

    #[test]
    fn cancellation_wins_over_an_expired_deadline() {
        let (token, _) = cancelled_budget();
        let budget = expired_deadline().with_cancel(token);
        assert!(matches!(budget.check_interrupt(), Some(TruncationReason::Cancelled)));
    }

    #[test]
    fn any_tripped_token_cancels_a_multi_token_budget() {
        // the daemon composes a per-connection and a drain token
        let quiet = CancelToken::new();
        let (tripped, _) = cancelled_budget();
        let budget = RunBudget::unlimited().with_cancel(quiet).with_cancel(tripped);
        assert!(matches!(budget.check_cancelled(), Some(TruncationReason::Cancelled)));
    }

    #[test]
    fn pipelines_truncate_on_cancellation() {
        let (_, budget) = cancelled_budget();
        let inst = eds_instance(2, 9).unwrap();
        let res = eds_lower::lower_bound_report_budgeted(&inst, &budget);
        assert!(matches!(
            res,
            Err(CoreError::Truncated { reason: TruncationReason::Cancelled, .. })
        ));
        let res = construct_budgeted(1, 1, 6, &budget);
        assert!(matches!(
            res,
            Err(CoreError::Truncated { reason: TruncationReason::Cancelled, .. })
        ));
    }

    /// Every request the serving layer can dispatch truncates under a
    /// pre-tripped token — the invariant the daemon's disconnect and
    /// drain paths rely on.
    #[test]
    fn every_request_pipeline_truncates_on_cancellation() {
        let cases: &[(&str, &str)] = &[
            ("eds-lower", r#"{"n":9}"#),
            ("homogeneous", r#"{"m":6}"#),
            ("hom-lift", r#"{"cycle":3,"m":6}"#),
            ("oi-to-po", r#"{"algo":"vc-non-min","cycle":9}"#),
            ("ramsey", r#"{"algo":"local-max","m":5}"#),
            ("transfer", r#"{"algo":"vc-non-min","cycle":9}"#),
            ("census", r#"{"family":"directed-cycle","n":12}"#),
        ];
        let (_, budget) = cancelled_budget();
        for (pipeline, params) in cases {
            let request = PipelineRequest::parse(pipeline, &Json::parse(params).unwrap())
                .unwrap_or_else(|e| panic!("{pipeline}: {e}"));
            let res = request.run(&budget);
            assert!(
                matches!(
                    res,
                    Err(CoreError::Truncated { reason: TruncationReason::Cancelled, .. })
                ),
                "{pipeline} must cancel cleanly"
            );
        }
    }

    #[test]
    fn cancellation_counters_reach_snapshots() {
        let before = locap_obs::counter("budget/truncated/cancelled").get();
        let (_, budget) = cancelled_budget();
        let g = gen::cycle(8);
        let ids: Vec<u64> = (0..8).collect();
        let _ = run::id_vertex_budgeted(&g, &ids, &IdMax, &budget);
        assert!(
            locap_obs::counter("budget/truncated/cancelled").get() > before,
            "cancelled truncations publish their counter"
        );
    }
}

mod obs_visibility {
    use super::*;

    /// Errors and truncations must be visible in OBS_JSON: drive one of
    /// each class and check the counters moved and serialise.
    #[test]
    fn error_and_truncation_counters_reach_snapshots() {
        let g = gen::cycle(8);
        let short: Vec<u64> = (0..3).collect();
        let before = locap_obs::counter("errors/run/input_length").get();
        let _ = run::id_vertex(&g, &short, &IdMax);
        let _ = run::id_vertex(&g, &short, &IdMax);
        assert_eq!(
            locap_obs::counter("errors/run/input_length").get(),
            before + 2,
            "every rejected run counts once"
        );

        let before = locap_obs::counter("budget/truncated/cache_cap").get();
        let ids: Vec<u64> = (0..8).collect();
        let budget = RunBudget::unlimited().with_cache_cap(1);
        let _ = run::id_vertex_budgeted(&g, &ids, &IdMax, &budget);
        assert!(locap_obs::counter("budget/truncated/cache_cap").get() > before);

        let snap = locap_obs::snapshot();
        assert!(snap.counters.keys().any(|k| k.starts_with("errors/run/")));
        assert!(snap.counters.keys().any(|k| k.starts_with("budget/truncated/")));
        let json = snap.to_json("failure_injection");
        assert!(json.contains("errors/run/input_length"));
        assert!(json.contains("budget/truncated/cache_cap"));
    }
}

#[test]
fn corrupted_covering_maps_rejected() {
    let g = PoGraph::canonical(&gen::cycle(5)).digraph().clone();
    let (h, phi) = trivial_lift(&g, 3);
    phi.verify(&h, &g).unwrap();

    // swap two images within different fibres: breaks local bijection
    let mut bad = phi.as_slice().to_vec();
    bad.swap(0, 1);
    assert!(CoveringMap::new(bad).verify(&h, &g).is_err());

    // constant map: not onto / wrong local structure
    assert!(CoveringMap::new(vec![0; h.node_count()]).verify(&h, &g).is_err());

    // truncated map
    assert!(CoveringMap::new(vec![0; 3]).verify(&h, &g).is_err());
}

#[test]
fn tampered_solutions_rejected_by_anonymous_verifiers() {
    let g = gen::petersen();

    // start from a valid vertex cover and delete one node
    let cover = locap_problems::vertex_cover::solve_exact(&g);
    assert!(verify_vertex(&g, &cover, &VertexCoverVerifier));
    let mut broken = cover.clone();
    let first = *broken.iter().next().unwrap();
    broken.remove(&first);
    assert!(!verify_vertex(&g, &broken, &VertexCoverVerifier));

    // start from a valid EDS and delete one edge until infeasible
    let eds = locap_problems::edge_dominating_set::solve_exact(&g);
    assert!(verify_edge(&g, &eds, &EdsVerifier));
    let mut broken: BTreeSet<Edge> = eds.clone();
    let e = *broken.iter().next().unwrap();
    broken.remove(&e);
    assert!(
        !verify_edge(&g, &broken, &EdsVerifier),
        "removing an edge from a *minimum* EDS must break feasibility"
    );
}

#[test]
fn doctored_homogeneous_graphs_fail_verification() {
    let h = construct(1, 1, 6).unwrap();
    h.verify().unwrap();

    // inflate the claimed census
    let mut fake = h.clone();
    fake.homogeneous_count = fake.node_count();
    assert!(matches!(fake.verify(), Err(CoreError::VerificationFailed { .. })));

    // reverse the order: every inner neighbourhood becomes the mirror of
    // τ*, which is a *different* labelled type, so the recount collapses
    let mut fake = h.clone();
    let n = fake.rank.len();
    for r in fake.rank.iter_mut() {
        *r = n - 1 - *r;
    }
    assert!(fake.verify().is_err());

    // break 2k-regularity by deleting an edge
    let mut fake = h.clone();
    let e = fake.digraph.edges().next().unwrap();
    assert!(fake.digraph.remove_edge(e.from, e.to, e.label));
    assert!(matches!(
        fake.verify(),
        Err(CoreError::VerificationFailed { property }) if property.contains("regular")
    ));
}

#[test]
fn eds_instance_with_broken_labelling_rejected() {
    let inst = eds_instance(2, 9).unwrap();
    lower_bound_report(&inst).unwrap();

    // delete one labelled edge: label-completeness fails
    let mut bad = EdsInstance {
        digraph: inst.digraph.clone(),
        delta_prime: inst.delta_prime,
        lift_degree: inst.lift_degree,
    };
    let e = bad.digraph.edges().next().unwrap();
    assert!(bad.digraph.remove_edge(e.from, e.to, e.label));
    assert!(matches!(lower_bound_report(&bad), Err(CoreError::VerificationFailed { .. })));
}

#[test]
fn improper_structures_rejected_at_construction() {
    use locap_graph::{GraphError, LDigraph, OrderedGraph, PortNumbering};

    // duplicate labels
    let mut d = LDigraph::new(3, 1);
    d.add_edge(0, 1, 0).unwrap();
    assert!(matches!(d.add_edge(0, 2, 0), Err(GraphError::ImproperLabelling { .. })));

    // bad port permutation
    let g = gen::cycle(4);
    let mut lists: Vec<Vec<usize>> = g.nodes().map(|v| g.neighbors(v).to_vec()).collect();
    lists[0][0] = lists[0][1];
    assert!(PortNumbering::from_lists(&g, lists).is_err());

    // bad order
    assert!(OrderedGraph::from_rank(gen::path(3), vec![0, 0, 2]).is_err());
}

#[test]
fn non_monochromatic_pools_detected() {
    use locap_core::ramsey::verify_monochromatic;
    use locap_graph::canon::IdNbhd;
    use locap_models::IdVertexAlgorithm;

    #[derive(Clone)]
    struct EvenId;
    impl IdVertexAlgorithm for EvenId {
        fn radius(&self) -> usize {
            1
        }
        fn evaluate(&self, t: &IdNbhd) -> bool {
            t.ids[t.root as usize] % 2 == 0
        }
    }

    // mixed-parity interior: not monochromatic for either bit
    let j = vec![1u64, 2, 3, 4, 5];
    assert!(!verify_monochromatic(&EvenId, &j, 1, true));
    assert!(!verify_monochromatic(&EvenId, &j, 1, false));
    // all-even interior: monochromatic for true
    let j = vec![1u64, 2, 4, 6, 7];
    assert!(verify_monochromatic(&EvenId, &j, 1, true));
}
