#!/usr/bin/env bash
# The full local CI gate: release build, tests, strict clippy.
# Run before every push; CI runs exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI gate passed."
