//! Fixture tests for the rule engine: one known-bad snippet per rule
//! (asserting it triggers exactly that rule), clean counterparts for the
//! exemption machinery, and the lock-down assertions on the real
//! workspace — the committed baseline must pass ratchet mode and must
//! contain no L2/L4 entries (those contracts hold outright).

use std::path::Path;

use locap_lint::{analyze_files, validate_lint_schema, Baseline, Config, Summary};
use locap_obs::json::Json;

/// Runs the analyzer over one in-memory file under the locap config.
fn lint_one(path: &str, src: &str) -> Vec<locap_lint::Diagnostic> {
    analyze_files(&[(path.to_string(), src.to_string())], &Config::locap())
}

/// Asserts every diagnostic of `diags` is from `rule` and there is at
/// least one — the fixture must trigger exactly the rule it targets.
fn assert_only(rule: &str, diags: &[locap_lint::Diagnostic]) {
    assert!(!diags.is_empty(), "fixture for {rule} triggered nothing");
    for d in diags {
        assert_eq!(d.rule, rule, "fixture for {rule} also triggered: {}", d.render());
    }
}

#[test]
fn l1_fires_on_unwrap_expect_macros_and_indexing() {
    let bad = r#"
pub fn f(v: &[u32], i: usize) -> u32 {
    let a = v.first().unwrap();
    let b = v.last().expect("nonempty");
    if i > v.len() { panic!("oob"); }
    *a + *b + v[i]
}
"#;
    let diags = lint_one("crates/core/src/fixture.rs", bad);
    assert_only("L1", &diags);
    assert_eq!(diags.len(), 4, "{diags:#?}");
}

#[test]
fn l1_exempts_tests_and_documented_panics() {
    let clean = r#"
/// Doubles the head.
///
/// # Panics
///
/// Panics when `v` is empty — callers check first.
pub fn head2(v: &[u32]) -> u32 {
    2 * v[0]
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let v = vec![1u32];
        assert_eq!(super::head2(&v), v.first().copied().unwrap() * 2);
    }
}
"#;
    assert!(lint_one("crates/core/src/fixture.rs", clean).is_empty());
    // out of scope entirely: same bad code outside the execution core
    let bad = "pub fn f(v: &[u32]) -> u32 { v[0] }\n";
    assert!(lint_one("crates/algos/src/fixture.rs", bad).is_empty());
}

#[test]
fn l2_fires_on_unallowlisted_clock_reads() {
    let bad = r#"
use std::time::Instant;
pub fn how_long() -> std::time::Duration {
    let t0 = Instant::now();
    t0.elapsed()
}
"#;
    let diags = lint_one("crates/algos/src/fixture.rs", bad);
    assert_only("L2", &diags);
    // ... and on exceeding a file's allowance (budget.rs allows one)
    let two = "pub fn f() { let _ = Instant::now(); let _ = Instant::now(); }\n";
    let diags = lint_one("crates/graph/src/budget.rs", two);
    assert_only("L2", &diags);
    assert_eq!(diags.len(), 1, "only the read beyond the allowance fires");
}

#[test]
fn l2_exempts_tests_and_allowlisted_sites() {
    let clean = r#"
pub fn f() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let _ = std::time::Instant::now();
    }
}
"#;
    assert!(lint_one("crates/algos/src/fixture.rs", clean).is_empty());
    let allowed = "pub fn today() { let _ = SystemTime::now(); }\n";
    assert!(lint_one("crates/bench/src/gate.rs", allowed).is_empty());
}

#[test]
fn l3_fires_on_inline_and_unresolved_metric_names() {
    let bad = r#"
pub fn f() {
    obs::counter("hot/loop").inc();
    obs::gauge(IMPORTED_ELSEWHERE).set(1);
}
"#;
    let diags = lint_one("crates/graph/src/fixture.rs", bad);
    assert_only("L3", &diags);
    assert_eq!(diags.len(), 2, "{diags:#?}");
}

#[test]
fn l3_accepts_consts_and_catches_duplicate_construction() {
    let clean = r#"
const HOT_LOOP: &str = "hot/loop";
pub fn f(i: u32) {
    obs::counter(HOT_LOOP).inc();
    obs::counter(&format!("hot/worker/{i}")).inc();
}
"#;
    assert!(lint_one("crates/graph/src/fixture.rs", clean).is_empty());

    // the publish-twice bug class: same name constructed in two files
    let a = "const N: &str = \"dup/name\";\npub fn f() { obs::counter(N).inc(); }\n";
    let b = "const M: &str = \"dup/name\";\npub fn g() { obs::counter(M).inc(); }\n";
    let diags = analyze_files(
        &[
            ("crates/graph/src/a.rs".to_string(), a.to_string()),
            ("crates/lifts/src/b.rs".to_string(), b.to_string()),
        ],
        &Config::locap(),
    );
    assert_only("L3", &diags);
    assert_eq!(diags.len(), 1);
    assert!(diags[0].message.contains("2 site(s)"), "{}", diags[0].message);
    assert_eq!(diags[0].file, "crates/lifts/src/b.rs", "the second site is the violation");
}

#[test]
fn l3_covers_latency_and_the_telemetry_families() {
    // the serve telemetry surface rides the same discipline: lifecycle
    // counters are consts, the per-request phase latency family is one
    // format! template
    let clean = r#"
const DROPPED: &str = "telemetry/dropped";
pub fn f(pipeline: &str, phase: &str, ns: u64) {
    obs::counter(DROPPED).inc();
    obs::latency(&format!("serve/request/{pipeline}/{phase}")).record_ns(ns);
}
"#;
    assert!(lint_one("crates/serve/src/fixture.rs", clean).is_empty());

    // an inline latency name is as much a violation as an inline counter
    let bad = r#"
pub fn f(ns: u64) {
    obs::latency("serve/request/census/run").record_ns(ns);
}
"#;
    let diags = lint_one("crates/serve/src/fixture.rs", bad);
    assert_only("L3", &diags);
    assert_eq!(diags.len(), 1, "{diags:#?}");

    // two files claiming the same format! family collide like consts do
    let a = r#"pub fn f(p: &str) { obs::latency(&format!("serve/request/{p}")).record_ns(1); }"#;
    let b = r#"pub fn g(p: &str) { obs::latency(&format!("serve/request/{p}")).record_ns(1); }"#;
    let diags = analyze_files(
        &[
            ("crates/serve/src/a.rs".to_string(), a.to_string()),
            ("crates/serve/src/b.rs".to_string(), b.to_string()),
        ],
        &Config::locap(),
    );
    assert_only("L3", &diags);
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert_eq!(diags[0].file, "crates/serve/src/b.rs", "the second site is the violation");
}

#[test]
fn l3_covers_the_store_counter_family() {
    // the result store's hit/miss/corruption counters follow the same
    // const-name discipline as every other metric family
    let clean = r#"
pub const STORE_WARM_HIT: &str = "store/warm_hit";
pub const STORE_CORRUPT: &str = "store/corrupt";
pub fn f() {
    obs::counter(STORE_WARM_HIT).inc();
    obs::counter(STORE_CORRUPT).inc();
}
"#;
    assert!(lint_one("crates/store/src/fixture.rs", clean).is_empty());

    // inlining a store counter name is a violation like any other
    let bad = r#"
pub fn f() {
    obs::counter("store/warm_hit").inc();
}
"#;
    let diags = lint_one("crates/store/src/fixture.rs", bad);
    assert_only("L3", &diags);
    assert_eq!(diags.len(), 1, "{diags:#?}");
}

#[test]
fn l1_covers_the_store_crate() {
    // the store sits on the serving hot path: panic discipline applies
    let fixture = "#![forbid(unsafe_code)]\npub fn f(v: &[u8]) -> u8 { v[0] }\n";
    let diags = lint_one("crates/store/src/lib.rs", fixture);
    assert_only("L1", &diags);
    assert!(!diags.is_empty(), "indexing in crates/store/src is a violation");
}

#[test]
fn l4_fires_on_crate_roots_without_forbid() {
    let bad = "//! A crate.\n\npub fn f() {}\n";
    assert_only("L4", &lint_one("crates/fixture/src/lib.rs", bad));
    assert_only("L4", &lint_one("crates/fixture/src/bin/tool.rs", bad));
    // non-root module files are not crate roots
    assert!(lint_one("crates/fixture/src/inner.rs", bad).is_empty());
    let clean = "//! A crate.\n\n#![forbid(unsafe_code)]\n\npub fn f() {}\n";
    assert!(lint_one("crates/fixture/src/lib.rs", clean).is_empty());
}

#[test]
fn l5_fires_on_unpaired_budgeted_fns() {
    let bad = "pub fn census_budgeted(b: B) -> R { imp(Some(b)) }\n";
    let diags = lint_one("crates/lifts/src/fixture.rs", bad);
    assert_only("L5", &diags);

    let clean = "pub fn census() -> R { imp(None) }\n\
                 pub fn census_budgeted(b: B) -> R { imp(Some(b)) }\n";
    assert!(lint_one("crates/lifts/src/fixture.rs", clean).is_empty());

    // reverse direction, entry-point files only: a naive variant demands
    // a budgeted one
    let entry = "pub fn run() -> R { imp() }\npub fn run_naive() -> R { reference() }\n";
    let diags = lint_one("crates/models/src/run.rs", entry);
    assert_only("L5", &diags);
    assert!(lint_one("crates/lifts/src/fixture.rs", entry).is_empty(), "not an entry-point file");
}

#[test]
fn diagnostics_json_round_trips_through_the_obs_parser() {
    let diags = lint_one("crates/core/src/fixture.rs", "pub fn f(v: &[u8]) -> u8 { v[0] }\n");
    let summary = Summary {
        files: 1,
        diagnostics: diags.len() as u64,
        baselined: 0,
        new: diags.len() as u64,
        stale: 0,
    };
    let text = locap_lint::diag::to_json(&summary, &diags);
    let doc = Json::parse(&text).expect("document parses with the in-repo parser");
    validate_lint_schema(&doc).expect("document is schema-valid");
    let rows = doc.get("diagnostics").and_then(Json::as_array).expect("rows");
    assert_eq!(rows.len(), diags.len());
    assert_eq!(rows[0].get("rule").and_then(Json::as_str), Some("L1"));
}

/// The real workspace, under the committed baseline, passes ratchet mode
/// — this is the same gate CI runs, locked down as a plain test.
#[test]
fn workspace_is_clean_under_the_committed_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let baseline = Baseline::load(&root.join("lint_baseline.json")).expect("baseline loads");
    assert!(!baseline.entries.is_empty(), "the committed baseline records the L1 debt");
    let run = locap_lint::run_check(&root, &Config::locap(), &baseline).expect("scan");
    assert!(run.passed(), "ratchet failures: {:#?}", run.failures);

    // the clock and unsafe contracts hold outright: no grandfathered debt
    for e in &baseline.entries {
        assert!(
            e.rule != "L2" && e.rule != "L4",
            "{} must pass with zero baseline entries, found one for {}",
            e.rule,
            e.file
        );
        assert!(
            !e.reason.trim().is_empty() && !e.reason.starts_with("TODO"),
            "baseline entry {} {} lacks a real reason",
            e.rule,
            e.file
        );
    }
}
