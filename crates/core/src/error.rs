use std::fmt;

use locap_graph::budget::TruncationReason;
use locap_models::RunError;

/// Errors from the constructions of the main theorems.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// No generator set of the requested size and girth was found within
    /// the search budget.
    GeneratorSearchFailed {
        /// Number of generators requested.
        k: usize,
        /// Girth bound required (`> 2r + 1`).
        girth_bound: usize,
        /// Human-readable context.
        detail: String,
    },
    /// The requested construction parameters exceed what can be
    /// materialised (group order too large).
    TooLarge {
        /// Description of the blow-up.
        reason: String,
    },
    /// A verification step failed — the constructed object does not have
    /// the property the theorem promises (indicates a bug or bad inputs).
    VerificationFailed {
        /// Which property failed.
        property: String,
    },
    /// Invalid parameters.
    BadParameters {
        /// Description of the defect.
        reason: String,
    },
    /// A model run inside the pipeline rejected its input.
    Run(RunError),
    /// A [`locap_graph::budget::RunBudget`] cut a report-shaped pipeline
    /// short: no meaningful partial report exists, so the truncation is
    /// an error carrying the stage it interrupted. (Value-shaped runs
    /// return their partial prefix via
    /// [`locap_graph::budget::Budgeted`] instead.)
    Truncated {
        /// Which pipeline stage was interrupted.
        stage: &'static str,
        /// Why the budget stopped it.
        reason: TruncationReason,
    },
}

impl CoreError {
    /// Stable machine-readable tag for structured error responses. The
    /// `locapd` wire protocol namespaces it: `Run` errors become
    /// `run/<RunError::kind>`, `Truncated` becomes
    /// `truncated/<TruncationReason::kind>`, and the remaining variants
    /// become `core/<kind>`.
    pub fn kind(&self) -> &'static str {
        match self {
            CoreError::GeneratorSearchFailed { .. } => "generator_search_failed",
            CoreError::TooLarge { .. } => "too_large",
            CoreError::VerificationFailed { .. } => "verification_failed",
            CoreError::BadParameters { .. } => "bad_parameters",
            CoreError::Run(e) => e.kind(),
            CoreError::Truncated { .. } => "truncated",
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::GeneratorSearchFailed { k, girth_bound, detail } => {
                write!(f, "no {k}-generator set with girth > {girth_bound} found: {detail}")
            }
            CoreError::TooLarge { reason } => write!(f, "construction too large: {reason}"),
            CoreError::VerificationFailed { property } => {
                write!(f, "verification failed: {property}")
            }
            CoreError::BadParameters { reason } => write!(f, "bad parameters: {reason}"),
            CoreError::Run(e) => write!(f, "model run failed: {e}"),
            CoreError::Truncated { stage, reason } => {
                write!(f, "budget exhausted during {stage}: {reason}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Run(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RunError> for CoreError {
    fn from(e: RunError) -> CoreError {
        // Already published at its construction site (`RunError::publish`);
        // wrapping adds no second count.
        CoreError::Run(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = CoreError::GeneratorSearchFailed { k: 2, girth_bound: 5, detail: "x".into() };
        assert!(e.to_string().contains("girth > 5"));
        assert!(CoreError::TooLarge { reason: "6^15".into() }.to_string().contains("6^15"));
        let e: Box<dyn std::error::Error> =
            Box::new(CoreError::VerificationFailed { property: "girth".into() });
        assert!(e.to_string().contains("girth"));
    }

    #[test]
    fn run_and_truncated_variants() {
        let e: CoreError = RunError::MissingIds.into();
        assert!(matches!(e, CoreError::Run(RunError::MissingIds)));
        assert!(e.to_string().contains("identifiers"));
        let t = CoreError::Truncated {
            stage: "mask sweep",
            reason: TruncationReason::RoundLimit { limit: 4 },
        };
        assert!(t.to_string().contains("mask sweep"));
    }
}
