use crate::GraphError;

/// Index of a node in a [`Graph`]. Nodes are always `0..n`.
pub type NodeId = usize;

/// An undirected edge, stored with `min(u, v) <= max(u, v)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    /// The smaller endpoint.
    pub u: NodeId,
    /// The larger endpoint.
    pub v: NodeId,
}

impl Edge {
    /// Creates a normalised edge with `u <= v`.
    pub fn new(a: NodeId, b: NodeId) -> Edge {
        if a <= b {
            Edge { u: a, v: b }
        } else {
            Edge { u: b, v: a }
        }
    }

    /// The endpoint different from `x`; `None` if `x` is not an endpoint.
    pub fn other(&self, x: NodeId) -> Option<NodeId> {
        if x == self.u {
            Some(self.v)
        } else if x == self.v {
            Some(self.u)
        } else {
            None
        }
    }

    /// Whether `x` is one of the endpoints.
    pub fn touches(&self, x: NodeId) -> bool {
        self.u == x || self.v == x
    }

    /// Whether the two edges share at least one endpoint.
    pub fn adjacent(&self, e: &Edge) -> bool {
        self.touches(e.u) || self.touches(e.v)
    }
}

/// A finite simple undirected graph with nodes `0..n`.
///
/// Adjacency lists are kept sorted, so iteration order is deterministic.
/// Self-loops and parallel edges are rejected at construction time.
///
/// # Examples
///
/// ```
/// use locap_graph::Graph;
///
/// let mut g = Graph::new(4);
/// g.add_edge(0, 1).unwrap();
/// g.add_edge(1, 2).unwrap();
/// g.add_edge(2, 3).unwrap();
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// assert!(g.has_edge(0, 1));
/// assert!(!g.has_edge(0, 3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<NodeId>>,
    m: usize,
}

impl Graph {
    /// Creates an edgeless graph on `n` nodes.
    pub fn new(n: usize) -> Graph {
        Graph { adj: vec![Vec::new(); n], m: 0 }
    }

    /// Builds a graph from an edge list.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range endpoints, self-loops and duplicate edges.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Graph, GraphError> {
        let mut g = Graph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range endpoints, self-loops and duplicate edges.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        let n = self.node_count();
        if u >= n {
            return Err(GraphError::NodeOutOfRange { node: u, n });
        }
        if v >= n {
            return Err(GraphError::NodeOutOfRange { node: v, n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if self.has_edge(u, v) {
            return Err(GraphError::DuplicateEdge { u, v });
        }
        let pos_u = self.adj[u].partition_point(|&x| x < v);
        self.adj[u].insert(pos_u, v);
        let pos_v = self.adj[v].partition_point(|&x| x < u);
        self.adj[v].insert(pos_v, u);
        self.m += 1;
        Ok(())
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.m
    }

    /// The sorted neighbour list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[v]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v].len()
    }

    /// The maximum degree Δ (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The minimum degree (0 for the empty graph).
    pub fn min_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Whether every node has degree exactly `d`.
    pub fn is_regular(&self, d: usize) -> bool {
        self.adj.iter().all(|a| a.len() == d)
    }

    /// Whether the edge `{u, v}` is present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u < self.node_count() && self.adj[u].binary_search(&v).is_ok()
    }

    /// Iterates over all edges in normalised, sorted order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            nbrs.iter().filter(move |&&v| u < v).map(move |&v| Edge::new(u, v))
        })
    }

    /// Collects all edges into a `Vec`.
    pub fn edge_vec(&self) -> Vec<Edge> {
        self.edges().collect()
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.node_count()
    }

    /// The index of `u` within `v`'s sorted neighbour list.
    pub fn neighbor_index(&self, v: NodeId, u: NodeId) -> Option<usize> {
        self.adj[v].binary_search(&u).ok()
    }

    /// Flattens the adjacency into a [`crate::CsrGraph`] for hot loops
    /// (one contiguous `u32` slice per neighbourhood scan).
    pub fn to_csr(&self) -> crate::CsrGraph {
        crate::CsrGraph::from_graph(self)
    }

    /// The disjoint union of `self` and `other`; nodes of `other` are
    /// shifted by `self.node_count()`.
    pub fn disjoint_union(&self, other: &Graph) -> Graph {
        let off = self.node_count();
        let mut g = Graph::new(off + other.node_count());
        for e in self.edges() {
            g.add_edge(e.u, e.v).expect("valid by construction");
        }
        for e in other.edges() {
            g.add_edge(e.u + off, e.v + off).expect("valid by construction");
        }
        g
    }

    /// The subgraph induced by `keep` (which need not be sorted);
    /// returns the graph and the map `new index -> old index`.
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> (Graph, Vec<NodeId>) {
        let mut order: Vec<NodeId> = keep.to_vec();
        order.sort_unstable();
        order.dedup();
        let mut pos = vec![usize::MAX; self.node_count()];
        for (i, &v) in order.iter().enumerate() {
            pos[v] = i;
        }
        let mut g = Graph::new(order.len());
        for &v in &order {
            for &u in self.neighbors(v) {
                if v < u && pos[u] != usize::MAX {
                    g.add_edge(pos[v], pos[u]).expect("valid by construction");
                }
            }
        }
        (g, order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_normalisation_and_helpers() {
        let e = Edge::new(5, 2);
        assert_eq!((e.u, e.v), (2, 5));
        assert_eq!(e.other(2), Some(5));
        assert_eq!(e.other(5), Some(2));
        assert_eq!(e.other(7), None);
        assert!(e.touches(2) && e.touches(5) && !e.touches(3));
        assert!(e.adjacent(&Edge::new(5, 9)));
        assert!(!e.adjacent(&Edge::new(3, 9)));
    }

    #[test]
    fn build_and_query() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert!(g.is_regular(2));
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 2);
        assert_eq!(g.neighbors(0), &[1, 3]);
        assert_eq!(g.neighbor_index(0, 3), Some(1));
        assert_eq!(g.neighbor_index(0, 2), None);
        let edges = g.edge_vec();
        assert_eq!(edges.len(), 4);
        assert!(edges.windows(2).all(|w| w[0] < w[1]), "sorted edge iteration");
    }

    #[test]
    fn rejects_bad_edges() {
        let mut g = Graph::new(3);
        assert_eq!(g.add_edge(0, 3), Err(GraphError::NodeOutOfRange { node: 3, n: 3 }));
        assert_eq!(g.add_edge(3, 0), Err(GraphError::NodeOutOfRange { node: 3, n: 3 }));
        assert_eq!(g.add_edge(1, 1), Err(GraphError::SelfLoop { node: 1 }));
        g.add_edge(0, 1).unwrap();
        assert_eq!(g.add_edge(1, 0), Err(GraphError::DuplicateEdge { u: 1, v: 0 }));
    }

    #[test]
    fn disjoint_union() {
        let a = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let b = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let u = a.disjoint_union(&b);
        assert_eq!(u.node_count(), 5);
        assert_eq!(u.edge_count(), 3);
        assert!(u.has_edge(0, 1));
        assert!(u.has_edge(2, 3));
        assert!(u.has_edge(3, 4));
        assert!(!u.has_edge(1, 2));
    }

    #[test]
    fn induced_subgraph() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let (h, map) = g.induced_subgraph(&[4, 0, 1]);
        assert_eq!(map, vec![0, 1, 4]);
        assert_eq!(h.node_count(), 3);
        assert_eq!(h.edge_count(), 2); // {0,1} and {4,0}
        assert!(h.has_edge(0, 1));
        assert!(h.has_edge(0, 2));
        assert!(!h.has_edge(1, 2));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edge_vec().len(), 0);
    }
}
