//! The three models of distributed computing (paper §2) as executable
//! algorithm interfaces.
//!
//! A deterministic local algorithm with run-time `r` is a *function of the
//! radius-`r` neighbourhood* (paper Eq. (1)); the three models differ only
//! in what that neighbourhood contains:
//!
//! | model | neighbourhood | trait |
//! |-------|---------------|-------|
//! | **ID** (§2.3) | τ(G, v) with unique identifiers — [`locap_graph::canon::IdNbhd`] | [`IdVertexAlgorithm`] / [`IdEdgeAlgorithm`] |
//! | **OI** (§2.4) | τ(G, <, v) up to order-isomorphism — [`locap_graph::canon::OrderedNbhd`] | [`OiVertexAlgorithm`] / [`OiEdgeAlgorithm`] |
//! | **PO** (§2.5) | the view τ(T(G, v)) — [`locap_lifts::ViewTree`] | [`PoVertexAlgorithm`] / [`PoEdgeAlgorithm`] |
//!
//! [`run`] executes an algorithm over a whole instance and assembles the
//! global solution (a vertex set or an edge set); an edge belongs to the
//! solution when *either* endpoint selects it.
//!
//! The crate also provides:
//!
//! * a synchronous message-passing simulator ([`sim`]) for the round-based
//!   algorithms of `locap-algos` (Cole–Vishkin, proposal matching, edge
//!   packing), with measured round counts;
//! * order-invariance testing ([`invariance`]): checks whether an
//!   ID algorithm's output survives order-preserving relabelling — the
//!   property that the Ramsey step of §4.2 forces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkable;
pub mod engine;
pub mod error;
pub mod invariance;
pub mod run;
pub mod sim;
mod traits;

pub use error::RunError;
pub use traits::{
    IdEdgeAlgorithm, IdVertexAlgorithm, OiEdgeAlgorithm, OiVertexAlgorithm, PoEdgeAlgorithm,
    PoTableAlgorithm, PoVertexAlgorithm,
};
