//! Conformance suite for the live-telemetry surface of `locapd`:
//!
//! * `subscribe` handshake — ack first, then a snapshot frame, then
//!   delta frames with strictly increasing `seq` (heartbeats even when
//!   idle);
//! * multiple concurrent subscribers each receiving a coherent stream;
//! * subscriber disconnect mid-stream (daemon unaffected, subscriber
//!   gauge recovers);
//! * slow consumers: bounded queues shed frames, the shed count is
//!   echoed per-subscriber, and the stream re-anchors with a snapshot;
//! * malformed subscribe frames and telemetry-disabled daemons;
//! * **exact reconciliation**: a snapshot plus every subsequent delta
//!   reconstructs the registry state byte-for-byte while concurrent
//!   pipeline load runs — checked against a final `stats` snapshot;
//! * the `locap watch` binary end-to-end.
//!
//! Every test in this binary serialises on one mutex: they all observe
//! the process-global metrics registry, and the runner executes tests
//! on parallel threads.

mod common;

use std::io::{BufRead, BufReader};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use common::{expect_err, expect_ok, Client, TestDaemon, VALID_REQUESTS};
use locap_obs::json::Json;
use locap_obs::telemetry::TelemetryState;
use locap_serve::daemon::DaemonConfig;
use locap_serve::protocol::TelemetryFrame;
use locap_serve::telemetry::TelemetryHub;

// Outermost test-serialization lock: taken before any daemon lock
// (rx=10, state=20, subs=21, writer=30), hence the lowest rank.
static SERIAL: Mutex<()> = Mutex::new(()); // lint: lock-rank=1

fn serialize() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A daemon config with a fast publisher for test turnaround.
fn telemetry_config() -> DaemonConfig {
    DaemonConfig { telemetry_interval: Some(Duration::from_millis(40)), ..DaemonConfig::default() }
}

/// Reads lines until the next telemetry frame (skipping interleaved
/// responses), with a hang guard.
fn next_frame(client: &mut Client) -> TelemetryFrame {
    for _ in 0..100 {
        let line = client.recv_line();
        if let Some(frame) = TelemetryFrame::parse(&line).expect("well-formed telemetry frame") {
            return frame;
        }
    }
    panic!("no telemetry frame within 100 lines");
}

#[test]
fn subscribe_acks_then_streams_snapshot_and_heartbeat_deltas() {
    let _guard = serialize();
    let daemon = TestDaemon::start(telemetry_config());
    let mut client = Client::connect(daemon.addr());

    let ack = client.roundtrip(r#"{"op":"subscribe","id":"s1"}"#);
    let result = expect_ok(&ack);
    assert_eq!(result.get("interval_ms").and_then(Json::as_u64), Some(40), "ack: {ack}");
    assert!(result.get("queue").and_then(Json::as_u64).is_some(), "ack carries queue: {ack}");

    // the ack precedes any frame; the first frame is a full snapshot
    let first = next_frame(&mut client);
    assert_eq!(first.kind, "snapshot", "first frame anchors the stream");
    assert_eq!(first.dropped, 0);
    assert!(
        first.data.counters.contains_key("serve/requests"),
        "snapshot carries the serve counters"
    );

    // heartbeats keep coming while idle, seq strictly increasing, and
    // an idle daemon reaches a fixed point (empty deltas)
    let mut seq = first.seq;
    let mut saw_empty_delta = false;
    for _ in 0..6 {
        let frame = next_frame(&mut client);
        assert!(frame.seq > seq, "seq must increase: {} then {}", seq, frame.seq);
        seq = frame.seq;
        if frame.kind == "delta" && frame.data.is_empty() {
            saw_empty_delta = true;
        }
    }
    assert!(saw_empty_delta, "an idle daemon streams empty heartbeat deltas");
    daemon.stop();
}

#[test]
fn multiple_subscribers_see_coherent_streams() {
    let _guard = serialize();
    let daemon = TestDaemon::start(telemetry_config());
    let mut sub_a = Client::connect(daemon.addr());
    let mut sub_b = Client::connect(daemon.addr());
    expect_ok(&sub_a.roundtrip(r#"{"op":"subscribe","id":"a"}"#));
    expect_ok(&sub_b.roundtrip(r#"{"op":"subscribe","id":"b"}"#));
    let snap_a = next_frame(&mut sub_a);
    let snap_b = next_frame(&mut sub_b);
    assert_eq!(snap_a.kind, "snapshot");
    assert_eq!(snap_b.kind, "snapshot");

    // drive one request on a third connection; both subscribers must
    // observe the same counter movement through their own streams
    let mut driver = Client::connect(daemon.addr());
    expect_ok(&driver.roundtrip(VALID_REQUESTS[6].1));

    for (label, sub, snap) in [("a", &mut sub_a, snap_a), ("b", &mut sub_b, snap_b)] {
        let base = snap.data.counters.get("serve/requests").copied().unwrap_or(0);
        let mut state = snap.data;
        for _ in 0..50 {
            let frame = next_frame(sub);
            if frame.kind == "snapshot" {
                state = frame.data;
            } else {
                state.apply(&frame.data);
            }
            if state.counters.get("serve/requests").copied().unwrap_or(0) > base {
                break;
            }
        }
        assert!(
            state.counters.get("serve/requests").copied().unwrap_or(0) > base,
            "subscriber {label} observed the request through its stream"
        );
    }
    daemon.stop();
}

#[test]
fn subscriber_disconnect_leaves_the_daemon_serving() {
    let _guard = serialize();
    let daemon = TestDaemon::start(telemetry_config());
    {
        let mut sub = Client::connect(daemon.addr());
        expect_ok(&sub.roundtrip(r#"{"op":"subscribe","id":"gone"}"#));
        let _ = next_frame(&mut sub);
        // drop mid-stream: connection closes with the subscription live
    }
    let mut client = Client::connect(daemon.addr());
    expect_ok(&client.roundtrip(r#"{"op":"ping","id":"after"}"#));
    expect_ok(&client.roundtrip(VALID_REQUESTS[0].1));

    // the subscribers gauge must fall back to zero once the daemon
    // notices the disconnect
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = client.roundtrip(r#"{"op":"stats"}"#);
        let registry = expect_ok(&stats).get("registry").expect("stats registry").clone();
        let state = TelemetryState::from_json(&registry).expect("registry parses");
        let live = state.gauges.get("telemetry/subscribers").copied().unwrap_or(0);
        if live == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "subscriber gauge stuck at {live}");
        std::thread::sleep(Duration::from_millis(25));
    }
    daemon.stop();
}

#[test]
fn slow_consumer_frames_are_shed_and_the_stream_reanchors() {
    let _guard = serialize();
    // Drive the hub directly (no publisher thread) so every tick is
    // under test control: queue depth 1, the writer mutex held to wedge
    // the forwarder, then released.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let client = TcpStream::connect(addr).expect("connect");
    client.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let mut reader = BufReader::new(client);
    let (server, _) = listener.accept().expect("accept");

    let hub = TelemetryHub::new(Duration::from_millis(10), 1);
    let writer = Arc::new(Mutex::new(server));
    hub.subscribe(Arc::clone(&writer));

    let read_frame = |reader: &mut BufReader<TcpStream>| -> TelemetryFrame {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read frame");
        TelemetryFrame::parse(&line).expect("frame parses").expect("line is a frame")
    };

    hub.publish_once();
    let first = read_frame(&mut reader);
    assert_eq!(first.kind, "snapshot");
    assert_eq!(first.dropped, 0);

    {
        // wedge the forwarder: it blocks on the writer mutex with one
        // frame in hand while the depth-1 queue fills behind it
        let _wedge = writer.lock().unwrap_or_else(|p| p.into_inner());
        for _ in 0..5 {
            hub.publish_once();
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    // at least one tick found the queue full and shed its frame; after
    // the shed, the subscriber is marked for resync, so the FIRST frame
    // that carries dropped >= 1 must be a snapshot
    let mut reanchor = None;
    for _ in 0..30 {
        hub.publish_once();
        std::thread::sleep(Duration::from_millis(5));
        let frame = read_frame(&mut reader);
        if frame.dropped >= 1 {
            reanchor = Some(frame);
            break;
        }
    }
    let reanchor = reanchor.expect("a frame reporting shed frames");
    assert_eq!(reanchor.kind, "snapshot", "the first frame after a shed re-anchors the stream");
    // the global shed counter moved too (the typed telemetry/dropped site)
    assert!(
        reanchor.data.counters.get("telemetry/dropped").copied().unwrap_or(0) >= 1,
        "telemetry/dropped counted the shed frames: {:?}",
        reanchor.data.counters
    );
}

#[test]
fn malformed_subscribe_frames_get_typed_errors() {
    let _guard = serialize();
    let daemon = TestDaemon::start(telemetry_config());
    let mut client = Client::connect(daemon.addr());
    expect_err(&client.roundtrip(r#"{"op":"subscribe","id":[1,2]}"#), "protocol/bad_id");
    expect_err(&client.roundtrip(r#"{"op":"subscrybe"}"#), "protocol/unknown_op");
    // the connection is still usable afterwards
    expect_ok(&client.roundtrip(r#"{"op":"ping","id":"alive"}"#));
    daemon.stop();
}

#[test]
fn subscribe_is_refused_when_telemetry_is_disabled() {
    let _guard = serialize();
    let config = DaemonConfig { telemetry_interval: None, ..DaemonConfig::default() };
    let daemon = TestDaemon::start(config);
    let mut client = Client::connect(daemon.addr());
    expect_err(&client.roundtrip(r#"{"op":"subscribe","id":"no"}"#), "protocol/telemetry_disabled");
    // stats reports streaming off
    let stats = client.roundtrip(r#"{"op":"stats"}"#);
    assert_eq!(
        expect_ok(&stats).get("telemetry_interval_ms").and_then(Json::as_u64),
        Some(0),
        "disabled telemetry reports interval 0: {stats}"
    );
    daemon.stop();
}

/// The acceptance test: while concurrent pipeline requests run, a
/// subscriber's snapshot plus every subsequent delta reconstructs the
/// registry **exactly** — verified against a `stats` snapshot taken on
/// the same connection.
#[test]
fn streamed_deltas_reconcile_exactly_with_a_stats_snapshot() {
    let _guard = serialize();
    let daemon = TestDaemon::start(telemetry_config());
    let mut sub = Client::connect(daemon.addr());
    expect_ok(&sub.roundtrip(r#"{"op":"subscribe","id":"rec"}"#));
    let first = next_frame(&mut sub);
    assert_eq!(first.kind, "snapshot");
    let mut state = first.data;

    // concurrent load: three connections, each replaying the full
    // pipeline matrix, while the subscription streams
    let addr = daemon.addr();
    let loaders: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                for (_, request) in VALID_REQUESTS {
                    expect_ok(&client.roundtrip(request));
                }
                client // keep the connection open: no disconnect churn
            })
        })
        .collect();
    let _held: Vec<Client> = loaders.into_iter().map(|t| t.join().expect("loader")).collect();

    // drain to quiescence: 3 consecutive empty deltas mean every metric
    // write from the load (including post-response phase records) landed
    let mut quiet = 0;
    while quiet < 3 {
        let frame = next_frame(&mut sub);
        if frame.kind == "snapshot" {
            state = frame.data;
            quiet = 0;
        } else {
            quiet = if frame.data.is_empty() { quiet + 1 } else { 0 };
            state.apply(&frame.data);
        }
    }

    // the stats snapshot is captured after its own serve/requests
    // increment but before its response is written, so the stream's
    // final state differs from it by exactly one serve/responses/ok.
    // Telemetry frames may interleave before the response on this
    // shared connection; fold them into the streamed state.
    sub.send_line(r#"{"op":"stats","id":"rec-stats"}"#);
    let stats = loop {
        let line = sub.recv_line();
        match TelemetryFrame::parse(&line).expect("well-formed line") {
            Some(frame) if frame.kind == "snapshot" => state = frame.data,
            Some(frame) => state.apply(&frame.data),
            None => break Json::parse(&line).unwrap_or_else(|e| panic!("bad stats ({e}): {line}")),
        }
    };
    let registry = expect_ok(&stats).get("registry").expect("stats registry").clone();
    let stats_state = TelemetryState::from_json(&registry).expect("registry parses");
    let mut expected = stats_state;
    *expected.counters.entry("serve/responses/ok".into()).or_insert(0) += 1;

    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if state == expected {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "stream never reconciled.\n streamed: {}\n expected: {}",
            state.to_json(),
            expected.to_json()
        );
        let frame = next_frame(&mut sub);
        if frame.kind == "snapshot" {
            state = frame.data;
        } else {
            state.apply(&frame.data);
        }
    }
    daemon.stop();
}

#[test]
fn watch_binary_renders_tsv_frames_end_to_end() {
    let _guard = serialize();
    let daemon = TestDaemon::start(telemetry_config());
    // give the watcher something non-trivial to render
    let mut client = Client::connect(daemon.addr());
    expect_ok(&client.roundtrip(VALID_REQUESTS[6].1));

    let output = std::process::Command::new(env!("CARGO_BIN_EXE_locap"))
        .args(["watch", "--addr", &daemon.addr().to_string(), "--frames", "2", "--tsv"])
        .output()
        .expect("spawn locap watch");
    assert!(
        output.status.success(),
        "locap watch failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.lines().any(|l| l.contains("\tcounter\tserve/requests\t")),
        "watch rendered counter rows:\n{stdout}"
    );
    assert!(
        stdout.lines().any(|l| l.contains("\tlatency\tserve/request/")),
        "watch rendered per-phase latency rows:\n{stdout}"
    );
    daemon.stop();
}
