//! Views: the information available to a PO algorithm (paper §2.5, Fig. 4).
//!
//! The view of an L-digraph `G` from `v` is the (possibly infinite) tree
//! `T(G, v)` of non-backtracking walks starting at `v`. A local
//! PO-algorithm with run-time `r` is exactly a function of the radius-`r`
//! truncation τ(T(G, v)) — computed here as a canonical [`ViewTree`].
//!
//! Because the trees are canonical (children sorted by letter, letters
//! distinct), **`ViewTree` equality is view isomorphism**, and the
//! fundamental lift-invariance `T(H, v) = T(G, ϕ(v))` for covering maps ϕ
//! can be checked by `==`.

use std::collections::HashMap;

use locap_graph::{LDigraph, NodeId};

use crate::{Letter, Word};

/// A node of a canonical view tree. Children are sorted by [`Letter`];
/// each child letter appears at most once, so structural equality is
/// isomorphism of the rooted, edge-labelled trees.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ViewNode {
    /// Children, sorted by letter; a child reached by a positive letter `ℓ`
    /// sits at the far end of an outgoing edge labelled `ℓ`, a child
    /// reached by `ℓ⁻¹` at the far end of an incoming edge.
    pub children: Vec<(Letter, ViewNode)>,
}

impl ViewNode {
    fn leaf() -> ViewNode {
        ViewNode { children: Vec::new() }
    }

    /// Number of nodes in the subtree (including this one).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(|(_, c)| c.size()).sum::<usize>()
    }

    /// Depth of the subtree (a leaf has depth 0).
    pub fn depth(&self) -> usize {
        self.children.iter().map(|(_, c)| c.depth() + 1).max().unwrap_or(0)
    }

    /// The child along `letter`, if present.
    pub fn child(&self, letter: Letter) -> Option<&ViewNode> {
        self.children
            .binary_search_by_key(&letter, |&(l, _)| l)
            .ok()
            .map(|i| &self.children[i].1)
    }

    /// All words (walks) in the subtree, each prefixed by `prefix`.
    fn collect_words(&self, prefix: &Word, out: &mut Vec<Word>) {
        out.push(prefix.clone());
        for (l, c) in &self.children {
            let mut w = prefix.clone();
            w.push(*l);
            c.collect_words(&w, out);
        }
    }
}

/// The radius-`r` truncation τ(T(G, v)) of the view of `G` from `v`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ViewTree {
    /// The root λ.
    pub root: ViewNode,
    /// The truncation radius.
    pub radius: usize,
    /// The alphabet size |L| of the underlying L-digraph.
    pub alphabet: usize,
}

impl ViewTree {
    /// Number of vertices (non-backtracking walks of length ≤ r).
    pub fn size(&self) -> usize {
        self.root.size()
    }

    /// The vertex set as sorted reduced words.
    pub fn words(&self) -> Vec<Word> {
        let mut out = Vec::new();
        self.root.collect_words(&Word::empty(), &mut out);
        out.sort();
        out
    }

    /// Whether `self` is a subtree of `other` rooted at the root
    /// (every walk of `self` is a walk of `other`).
    pub fn embeds_in(&self, other: &ViewTree) -> bool {
        fn rec(a: &ViewNode, b: &ViewNode) -> bool {
            a.children.iter().all(|(l, ac)| match b.child(*l) {
                Some(bc) => rec(ac, bc),
                None => false,
            })
        }
        rec(&self.root, &other.root)
    }
}

fn build(d: &LDigraph, node: NodeId, last: Option<Letter>, depth: usize) -> ViewNode {
    if depth == 0 {
        return ViewNode::leaf();
    }
    let mut children = Vec::new();
    for label in 0..d.alphabet_size() {
        if let Some(u) = d.out_neighbor(node, label) {
            let letter = Letter::pos(label);
            // following `letter` backtracks iff it undoes the last letter
            if last != Some(letter.inv()) {
                children.push((letter, build(d, u, Some(letter), depth - 1)));
            }
        }
        if let Some(u) = d.in_neighbor(node, label) {
            let letter = Letter::neg(label);
            if last != Some(letter.inv()) {
                children.push((letter, build(d, u, Some(letter), depth - 1)));
            }
        }
    }
    children.sort_by_key(|&(l, _)| l);
    ViewNode { children }
}

/// Computes the canonical radius-`r` view τ(T(G, v)).
///
/// ```
/// use locap_graph::gen;
/// use locap_lifts::view;
///
/// // In a directed cycle every node has the same view — PO algorithms
/// // cannot break symmetry (Fig. 2, right).
/// let g = gen::directed_cycle(5);
/// let t0 = view(&g, 0, 3);
/// for v in 1..5 {
///     assert_eq!(view(&g, v, 3), t0);
/// }
/// assert_eq!(t0.size(), 1 + 2 * 3); // path of walks: a, aa, aaa, a⁻¹, …
/// ```
pub fn view(d: &LDigraph, v: NodeId, r: usize) -> ViewTree {
    ViewTree { root: build(d, v, None, r), radius: r, alphabet: d.alphabet_size() }
}

/// Counts the distinct radius-`r` views of all nodes; most frequent first.
/// A graph is *PO-symmetric at radius r* when this census has one entry —
/// then every PO algorithm must produce the same output everywhere.
pub fn view_census(d: &LDigraph, r: usize) -> Vec<(ViewTree, usize)> {
    let mut counts: HashMap<ViewTree, usize> = HashMap::new();
    for v in 0..d.node_count() {
        *counts.entry(view(d, v, r)).or_insert(0) += 1;
    }
    let mut out: Vec<_> = counts.into_iter().collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use locap_graph::gen;
    use locap_graph::product::toroidal;

    #[test]
    fn directed_cycle_views_identical() {
        let g = gen::directed_cycle(7);
        let census = view_census(&g, 3);
        assert_eq!(census.len(), 1, "all views identical");
        assert_eq!(census[0].1, 7);
    }

    #[test]
    fn view_of_directed_cycle_is_path() {
        let g = gen::directed_cycle(7);
        let t = view(&g, 0, 2);
        // walks: λ, a, aa, a⁻¹, a⁻¹a⁻¹
        assert_eq!(t.size(), 5);
        assert_eq!(t.root.depth(), 2);
        let words: Vec<String> = t.words().iter().map(|w| w.to_string()).collect();
        assert!(words.contains(&"aa".to_string()));
        assert!(words.contains(&"a\u{207b}\u{00b9}a\u{207b}\u{00b9}".to_string()));
    }

    #[test]
    fn view_detects_asymmetry() {
        // A directed path 0 -> 1 -> 2: endpoints see different views.
        let mut d = LDigraph::new(3, 1);
        d.add_edge(0, 1, 0).unwrap();
        d.add_edge(1, 2, 0).unwrap();
        let v0 = view(&d, 0, 2);
        let v1 = view(&d, 1, 2);
        let v2 = view(&d, 2, 2);
        assert_ne!(v0, v1);
        assert_ne!(v0, v2);
        assert_ne!(v1, v2);
    }

    #[test]
    fn toroidal_views_identical() {
        // Cayley graphs are vertex-transitive with consistent labels:
        // one view class even though girth is 4 < 2r+1.
        let t = toroidal(2, 4);
        let census = view_census(&t, 2);
        assert_eq!(census.len(), 1);
        assert_eq!(census[0].1, 16);
    }

    #[test]
    fn view_size_on_label_complete_graph() {
        // In a label-complete L-digraph with girth > 2r+1, the view is the
        // complete tree: every non-root node has 2|L| - 1 children.
        let g = gen::directed_cycle(9); // |L| = 1
        let t = view(&g, 0, 4);
        assert_eq!(t.size(), 9); // 1 + 2*4 walks
        let t2 = toroidal(2, 5); // |L| = 2, girth 4: not a tree at r >= 2
        let v = view(&t2, 0, 1);
        assert_eq!(v.size(), 5); // 1 + 2*|L| at radius 1 regardless of girth
    }

    #[test]
    fn embeds_in_relation() {
        let g = gen::directed_cycle(9);
        let small = view(&g, 0, 2);
        let big = view(&g, 0, 4);
        assert!(small.embeds_in(&big));
        assert!(!big.embeds_in(&small));
        assert!(small.embeds_in(&small));
    }

    #[test]
    fn child_lookup() {
        let g = gen::directed_cycle(5);
        let t = view(&g, 0, 2);
        let fwd = t.root.child(Letter::pos(0)).unwrap();
        assert_eq!(fwd.children.len(), 1, "non-backtracking: only forward");
        assert!(t.root.child(Letter::pos(1)).is_none());
    }

    #[test]
    fn census_separates_degrees() {
        // A star with PO structure: centre vs leaves have different views.
        let s = gen::star(3);
        let po = locap_graph::PoGraph::canonical(&s);
        let census = view_census(po.digraph(), 1);
        // centre type (1 node) + leaf types; leaves differ by which port of
        // the centre they hang off, so views differ in the incoming label.
        let total: usize = census.iter().map(|x| x.1).sum();
        assert_eq!(total, 4);
        assert!(census.len() >= 2);
    }
}
