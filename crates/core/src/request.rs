//! The uniform request/response layer over the core pipelines.
//!
//! Every pipeline the crate exposes — the EDS lower bound, the
//! Theorem 3.2 homogeneous construction, homogeneous lifts, the OI → PO
//! simulation, the Ramsey ID → OI step, the full transfer, and the view
//! census — is addressable here by a stable string name and a flat JSON
//! parameter object, and returns its report as a JSON value. This is the
//! single dispatch surface shared by the `locap` CLI and the `locapd`
//! daemon (crate `locap-serve`): both parse a `(pipeline, params)` pair
//! into a [`PipelineRequest`], attach a [`RunBudget`], and call
//! [`PipelineRequest::run`].
//!
//! Parse-time failures ([`RequestError`]) are the *caller's* fault and
//! carry a machine-readable kind; run-time failures are the usual typed
//! [`CoreError`]. Neither path panics: parameters that would trip a
//! generator precondition (for example a cycle shorter than 3) are
//! rejected during parsing.

use std::collections::BTreeSet;

use locap_graph::budget::RunBudget;
use locap_graph::canon::{IdNbhd, OrderedNbhd};
use locap_graph::{gen, product, Graph, LDigraph};
use locap_lifts::ViewCache;
use locap_models::{run, IdVertexAlgorithm, OiVertexAlgorithm};
use locap_num::Ratio;
use locap_obs::json::Json;
use locap_problems::{approx_ratio, independent_set, vertex_cover, Goal};
use locap_store::{StoreHandle, StoreKey};

use crate::transfer::require_complete;
use crate::{eds_lower, hom_lift, homogeneous, oi_to_po, ramsey, transfer, CoreError};

/// Store namespace holding whole-request result documents.
pub const PIPELINE_STORE_NS: &str = "pipeline";

/// Every pipeline name this layer dispatches, in CLI/daemon order.
pub const PIPELINES: [&str; 7] =
    ["eds-lower", "homogeneous", "hom-lift", "oi-to-po", "ramsey", "transfer", "census"];

/// Hard ceiling on any size-like request parameter (node counts, moduli,
/// identifier universes). Budgets bound *time*; this bounds the
/// *allocation* a single request can demand before any work starts.
pub const MAX_PARAM: u64 = 1 << 20;

/// A parse-time rejection of a `(pipeline, params)` pair. These are
/// caller errors: the request never reached a pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The pipeline name is not one of [`PIPELINES`].
    UnknownPipeline {
        /// The name the caller sent.
        name: String,
    },
    /// A required parameter is absent.
    MissingParam {
        /// The pipeline being parsed.
        pipeline: &'static str,
        /// The absent parameter.
        param: &'static str,
    },
    /// A parameter is present but unusable (wrong type, out of range,
    /// unknown enumeration value).
    BadParam {
        /// The pipeline being parsed.
        pipeline: &'static str,
        /// The offending parameter.
        param: &'static str,
        /// What was wrong with it.
        reason: String,
    },
}

impl RequestError {
    /// Stable machine-readable tag, used as the error kind in daemon
    /// responses (`request/<kind>`).
    pub fn kind(&self) -> &'static str {
        match self {
            RequestError::UnknownPipeline { .. } => "unknown_pipeline",
            RequestError::MissingParam { .. } => "missing_param",
            RequestError::BadParam { .. } => "bad_param",
        }
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::UnknownPipeline { name } => {
                write!(f, "unknown pipeline {name:?}; expected one of {PIPELINES:?}")
            }
            RequestError::MissingParam { pipeline, param } => {
                write!(f, "pipeline {pipeline:?} requires parameter {param:?}")
            }
            RequestError::BadParam { pipeline, param, reason } => {
                write!(f, "pipeline {pipeline:?} parameter {param:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for RequestError {}

/// OI vertex algorithms addressable by name in requests (the e09 pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OiAlgo {
    /// Vertex cover: join unless the centre is its ball's order-minimum.
    VcNonMin,
    /// Independent set: join iff the centre is its ball's order-minimum.
    IsLocalMin,
}

impl OiAlgo {
    /// Request names, aligned with the variants.
    pub const NAMES: [&'static str; 2] = ["vc-non-min", "is-local-min"];

    /// Parses a request name.
    pub fn parse(name: &str) -> Option<OiAlgo> {
        match name {
            "vc-non-min" => Some(OiAlgo::VcNonMin),
            "is-local-min" => Some(OiAlgo::IsLocalMin),
            _ => None,
        }
    }

    /// The request name of this algorithm.
    pub fn name(self) -> &'static str {
        match self {
            OiAlgo::VcNonMin => "vc-non-min",
            OiAlgo::IsLocalMin => "is-local-min",
        }
    }

    /// The optimisation goal of the underlying problem.
    pub fn goal(self) -> Goal {
        match self {
            OiAlgo::VcNonMin => Goal::Minimize,
            OiAlgo::IsLocalMin => Goal::Maximize,
        }
    }

    fn feasible(self, g: &Graph, x: &BTreeSet<usize>) -> bool {
        match self {
            OiAlgo::VcNonMin => vertex_cover::feasible(g, x),
            OiAlgo::IsLocalMin => independent_set::feasible(g, x),
        }
    }

    fn opt_value(self, g: &Graph) -> usize {
        match self {
            OiAlgo::VcNonMin => vertex_cover::opt_value(g),
            OiAlgo::IsLocalMin => independent_set::opt_value(g),
        }
    }
}

impl OiVertexAlgorithm for OiAlgo {
    fn radius(&self) -> usize {
        1
    }

    fn evaluate(&self, t: &OrderedNbhd) -> bool {
        match self {
            OiAlgo::VcNonMin => t.root != 0,
            OiAlgo::IsLocalMin => t.root == 0,
        }
    }
}

/// ID vertex algorithms addressable by name in requests (the e10 trio).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdAlgo {
    /// Join iff the centre holds the ball's maximum identifier
    /// (order-invariant by construction).
    LocalMax,
    /// Join iff the centre's identifier is even (value-sensitive).
    EvenId,
    /// Join iff the sum of ball identifiers is divisible by 3
    /// (value-sensitive).
    SumMod3,
}

impl IdAlgo {
    /// Request names, aligned with the variants.
    pub const NAMES: [&'static str; 3] = ["local-max", "even-id", "sum-mod3"];

    /// Parses a request name.
    pub fn parse(name: &str) -> Option<IdAlgo> {
        match name {
            "local-max" => Some(IdAlgo::LocalMax),
            "even-id" => Some(IdAlgo::EvenId),
            "sum-mod3" => Some(IdAlgo::SumMod3),
            _ => None,
        }
    }

    /// The request name of this algorithm.
    pub fn name(self) -> &'static str {
        match self {
            IdAlgo::LocalMax => "local-max",
            IdAlgo::EvenId => "even-id",
            IdAlgo::SumMod3 => "sum-mod3",
        }
    }
}

impl IdVertexAlgorithm for IdAlgo {
    fn radius(&self) -> usize {
        1
    }

    fn evaluate(&self, t: &IdNbhd) -> bool {
        match self {
            IdAlgo::LocalMax => t.root as usize + 1 == t.ids.len(),
            IdAlgo::EvenId => t.ids.get(t.root as usize).is_some_and(|id| id % 2 == 0),
            IdAlgo::SumMod3 => t.ids.iter().sum::<u64>() % 3 == 0,
        }
    }
}

/// The graph family a `census` request walks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CensusFamily {
    /// `gen::directed_cycle(n)`.
    DirectedCycle {
        /// Cycle length (≥ 3).
        n: usize,
    },
    /// `product::toroidal(k, m)` — the k-dimensional discrete torus.
    Toroidal {
        /// Dimension (≥ 1).
        k: usize,
        /// Side length (≥ 3).
        m: usize,
    },
}

impl CensusFamily {
    fn build(self) -> LDigraph {
        match self {
            CensusFamily::DirectedCycle { n } => gen::directed_cycle(n),
            CensusFamily::Toroidal { k, m } => product::toroidal(k, m),
        }
    }

    fn describe(self) -> String {
        match self {
            CensusFamily::DirectedCycle { n } => format!("directed-cycle({n})"),
            CensusFamily::Toroidal { k, m } => format!("toroidal({k},{m})"),
        }
    }
}

/// A fully parsed pipeline invocation: one variant per [`PIPELINES`]
/// entry, carrying validated parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineRequest {
    /// Theorem 1.6 lower-bound certificate on the `Δ′, n` EDS instance.
    EdsLower {
        /// The degree `Δ′ = 2k`.
        delta_prime: usize,
        /// Instance size.
        n: usize,
    },
    /// Theorem 3.2 homogeneous graph construction.
    Homogeneous {
        /// Number of labels.
        k: usize,
        /// Target radius.
        r: usize,
        /// Modulus (even).
        m: u64,
    },
    /// Theorem 3.3 homogeneous lift of a directed cycle.
    HomLift {
        /// Base cycle length (≥ 3).
        cycle: usize,
        /// Modulus for the homogeneous graph `H`.
        m: u64,
    },
    /// Theorem 4.1: run the simulated PO algorithm `B` on a cycle.
    OiToPo {
        /// The OI algorithm `A` being simulated.
        algo: OiAlgo,
        /// Cycle length (≥ 3).
        cycle: usize,
        /// Modulus for the homogeneous graph fixing `<*`.
        m: u64,
    },
    /// §4.2 Ramsey ID → OI transfer on an identifier universe.
    Ramsey {
        /// The ID algorithm to transfer.
        algo: IdAlgo,
        /// Identifier universe `{1..=universe}`.
        universe: u64,
        /// Radius.
        r: usize,
        /// Requested monochromatic set size.
        m: usize,
    },
    /// The full OI → PO transfer with approximation accounting.
    Transfer {
        /// The OI algorithm `A`.
        algo: OiAlgo,
        /// Base cycle length (≥ 3).
        cycle: usize,
        /// Modulus for the homogeneous graph `H`.
        m: u64,
    },
    /// Exact view census of a graph family up to a radius.
    Census {
        /// The graph family.
        family: CensusFamily,
        /// Maximum census radius (≥ 1).
        radius: usize,
    },
}

fn int_param(
    pipeline: &'static str,
    params: &Json,
    param: &'static str,
    default: Option<u64>,
) -> Result<u64, RequestError> {
    let Some(v) = params.get(param) else {
        return default.ok_or(RequestError::MissingParam { pipeline, param });
    };
    let n = v.as_u64().ok_or_else(|| RequestError::BadParam {
        pipeline,
        param,
        reason: format!("expected a non-negative integer, got {v}"),
    })?;
    if n > MAX_PARAM {
        return Err(RequestError::BadParam {
            pipeline,
            param,
            reason: format!("{n} exceeds the maximum {MAX_PARAM}"),
        });
    }
    Ok(n)
}

fn int_min(
    pipeline: &'static str,
    params: &Json,
    param: &'static str,
    default: Option<u64>,
    min: u64,
) -> Result<u64, RequestError> {
    let n = int_param(pipeline, params, param, default)?;
    if n < min {
        return Err(RequestError::BadParam {
            pipeline,
            param,
            reason: format!("must be at least {min}, got {n}"),
        });
    }
    Ok(n)
}

fn str_param<'a>(
    pipeline: &'static str,
    params: &'a Json,
    param: &'static str,
) -> Result<&'a str, RequestError> {
    params
        .get(param)
        .ok_or(RequestError::MissingParam { pipeline, param })?
        .as_str()
        .ok_or_else(|| RequestError::BadParam {
            pipeline,
            param,
            reason: "expected a string".into(),
        })
}

fn oi_algo_param(pipeline: &'static str, params: &Json) -> Result<OiAlgo, RequestError> {
    let name = str_param(pipeline, params, "algo")?;
    OiAlgo::parse(name).ok_or_else(|| RequestError::BadParam {
        pipeline,
        param: "algo",
        reason: format!("unknown OI algorithm {name:?}; expected one of {:?}", OiAlgo::NAMES),
    })
}

fn id_algo_param(pipeline: &'static str, params: &Json) -> Result<IdAlgo, RequestError> {
    let name = str_param(pipeline, params, "algo")?;
    IdAlgo::parse(name).ok_or_else(|| RequestError::BadParam {
        pipeline,
        param: "algo",
        reason: format!("unknown ID algorithm {name:?}; expected one of {:?}", IdAlgo::NAMES),
    })
}

impl PipelineRequest {
    /// Parses a `(pipeline, params)` pair. `params` must be a JSON
    /// object (an empty one stands for "no parameters").
    ///
    /// # Errors
    ///
    /// [`RequestError`] describing the first unusable field; parameters
    /// are checked against generator preconditions here so that
    /// [`PipelineRequest::run`] cannot panic on caller input.
    pub fn parse(pipeline: &str, params: &Json) -> Result<PipelineRequest, RequestError> {
        let canonical = PIPELINES
            .iter()
            .find(|p| **p == pipeline)
            .copied()
            .ok_or_else(|| RequestError::UnknownPipeline { name: pipeline.into() })?;
        if !matches!(params, Json::Obj(_)) {
            return Err(RequestError::BadParam {
                pipeline: canonical,
                param: "params",
                reason: "parameters must be a JSON object".into(),
            });
        }
        let p = canonical;
        match p {
            "eds-lower" => Ok(PipelineRequest::EdsLower {
                delta_prime: int_min(p, params, "delta_prime", Some(2), 2)? as usize,
                n: int_min(p, params, "n", None, 3)? as usize,
            }),
            "homogeneous" => Ok(PipelineRequest::Homogeneous {
                k: int_min(p, params, "k", Some(1), 1)? as usize,
                r: int_min(p, params, "r", Some(1), 1)? as usize,
                m: int_min(p, params, "m", None, 2)?,
            }),
            "hom-lift" => Ok(PipelineRequest::HomLift {
                cycle: int_min(p, params, "cycle", None, 3)? as usize,
                m: int_min(p, params, "m", None, 2)?,
            }),
            "oi-to-po" => Ok(PipelineRequest::OiToPo {
                algo: oi_algo_param(p, params)?,
                cycle: int_min(p, params, "cycle", None, 3)? as usize,
                m: int_min(p, params, "m", Some(6), 2)?,
            }),
            "ramsey" => Ok(PipelineRequest::Ramsey {
                algo: id_algo_param(p, params)?,
                universe: int_min(p, params, "universe", Some(20), 3)?,
                r: int_min(p, params, "r", Some(1), 1)? as usize,
                m: int_min(p, params, "m", None, 3)? as usize,
            }),
            "transfer" => Ok(PipelineRequest::Transfer {
                algo: oi_algo_param(p, params)?,
                cycle: int_min(p, params, "cycle", None, 3)? as usize,
                m: int_min(p, params, "m", Some(6), 2)?,
            }),
            "census" => {
                let family = match str_param(p, params, "family")? {
                    "directed-cycle" => CensusFamily::DirectedCycle {
                        n: int_min(p, params, "n", None, 3)? as usize,
                    },
                    "toroidal" => CensusFamily::Toroidal {
                        k: int_min(p, params, "k", Some(1), 1)? as usize,
                        m: int_min(p, params, "m", None, 3)? as usize,
                    },
                    other => {
                        return Err(RequestError::BadParam {
                            pipeline: p,
                            param: "family",
                            reason: format!(
                            "unknown family {other:?}; expected \"directed-cycle\" or \"toroidal\""
                        ),
                        })
                    }
                };
                Ok(PipelineRequest::Census {
                    family,
                    radius: int_min(p, params, "radius", Some(2), 1)? as usize,
                })
            }
            _ => Err(RequestError::UnknownPipeline { name: pipeline.into() }),
        }
    }

    /// The canonical pipeline name of this request.
    pub fn pipeline(&self) -> &'static str {
        match self {
            PipelineRequest::EdsLower { .. } => "eds-lower",
            PipelineRequest::Homogeneous { .. } => "homogeneous",
            PipelineRequest::HomLift { .. } => "hom-lift",
            PipelineRequest::OiToPo { .. } => "oi-to-po",
            PipelineRequest::Ramsey { .. } => "ramsey",
            PipelineRequest::Transfer { .. } => "transfer",
            PipelineRequest::Census { .. } => "census",
        }
    }

    /// The request's parameters as a JSON object (round-trips through
    /// [`PipelineRequest::parse`]); recorded in provenance sidecars.
    pub fn params_json(&self) -> Json {
        let mut f: Vec<(String, Json)> = Vec::new();
        let mut put = |k: &str, v: Json| f.push((k.to_string(), v));
        match self {
            PipelineRequest::EdsLower { delta_prime, n } => {
                put("delta_prime", Json::Num(*delta_prime as f64));
                put("n", Json::Num(*n as f64));
            }
            PipelineRequest::Homogeneous { k, r, m } => {
                put("k", Json::Num(*k as f64));
                put("r", Json::Num(*r as f64));
                put("m", Json::Num(*m as f64));
            }
            PipelineRequest::HomLift { cycle, m } => {
                put("cycle", Json::Num(*cycle as f64));
                put("m", Json::Num(*m as f64));
            }
            PipelineRequest::OiToPo { algo, cycle, m } => {
                put("algo", Json::Str(algo.name().into()));
                put("cycle", Json::Num(*cycle as f64));
                put("m", Json::Num(*m as f64));
            }
            PipelineRequest::Ramsey { algo, universe, r, m } => {
                put("algo", Json::Str(algo.name().into()));
                put("universe", Json::Num(*universe as f64));
                put("r", Json::Num(*r as f64));
                put("m", Json::Num(*m as f64));
            }
            PipelineRequest::Transfer { algo, cycle, m } => {
                put("algo", Json::Str(algo.name().into()));
                put("cycle", Json::Num(*cycle as f64));
                put("m", Json::Num(*m as f64));
            }
            PipelineRequest::Census { family, radius } => {
                match family {
                    CensusFamily::DirectedCycle { n } => {
                        put("family", Json::Str("directed-cycle".into()));
                        put("n", Json::Num(*n as f64));
                    }
                    CensusFamily::Toroidal { k, m } => {
                        put("family", Json::Str("toroidal".into()));
                        put("k", Json::Num(*k as f64));
                        put("m", Json::Num(*m as f64));
                    }
                }
                put("radius", Json::Num(*radius as f64));
            }
        }
        Json::Obj(f)
    }

    /// Runs the pipeline under `budget` and returns its report as a JSON
    /// object.
    ///
    /// # Errors
    ///
    /// The pipeline's own [`CoreError`]s; an already-tripped budget
    /// (expired deadline, cancelled token) is reported as
    /// [`CoreError::Truncated`] before any work starts, so every
    /// pipeline truncates deterministically under a zero deadline.
    pub fn run(&self, budget: &RunBudget) -> Result<Json, CoreError> {
        self.run_with_store(budget, None)
    }

    /// [`PipelineRequest::run`] with an optional persistent result store.
    ///
    /// With a store, the request's result document is looked up under its
    /// content key first — a warm hit skips the computation entirely —
    /// and persisted on a successful cold run. The census pipeline
    /// additionally consults the store per radius (so overlapping census
    /// requests share sub-censuses). Store damage degrades to a
    /// recompute and store write failures are counted but never turn a
    /// successful run into an error.
    pub fn run_with_store(
        &self,
        budget: &RunBudget,
        store: Option<&StoreHandle>,
    ) -> Result<Json, CoreError> {
        if let Some(t) = budget.check_interrupt() {
            return Err(CoreError::Truncated { stage: self.pipeline(), reason: t.publish() });
        }
        let keyed = store.map(|s| (s, self.store_key()));
        if let Some((s, key)) = &keyed {
            if let Some(doc) = s.get(PIPELINE_STORE_NS, key) {
                return Ok(doc);
            }
        }
        let result = match *self {
            PipelineRequest::EdsLower { delta_prime, n } => run_eds_lower(delta_prime, n, budget),
            PipelineRequest::Homogeneous { k, r, m } => run_homogeneous(k, r, m, budget),
            PipelineRequest::HomLift { cycle, m } => run_hom_lift(cycle, m, budget),
            PipelineRequest::OiToPo { algo, cycle, m } => run_oi_to_po(algo, cycle, m, budget),
            PipelineRequest::Ramsey { algo, universe, r, m } => {
                run_ramsey(algo, universe, r, m, budget)
            }
            PipelineRequest::Transfer { algo, cycle, m } => run_transfer(algo, cycle, m, budget),
            PipelineRequest::Census { family, radius } => run_census(family, radius, budget, store),
        }?;
        if let Some((s, key)) = &keyed {
            s.put(PIPELINE_STORE_NS, key, &result).ok();
        }
        Ok(result)
    }

    /// The content key addressing this request's result document in a
    /// store: a digest of the pipeline name plus the canonical
    /// parameter encoding (which round-trips through `parse`, so equal
    /// requests key equally and distinct ones key distinctly).
    pub fn store_key(&self) -> StoreKey {
        StoreKey::of_bytes(format!("{} {}", self.pipeline(), self.params_json()).as_bytes())
    }
}

fn push_ratio(fields: &mut Vec<(String, Json)>, name: &str, r: Ratio) {
    fields.push((name.to_string(), Json::Str(r.to_string())));
    fields.push((format!("{name}_f64"), Json::Num(r.to_f64())));
}

fn push_num(fields: &mut Vec<(String, Json)>, name: &str, x: u64) {
    fields.push((name.to_string(), Json::Num(x as f64)));
}

fn run_eds_lower(delta_prime: usize, n: usize, budget: &RunBudget) -> Result<Json, CoreError> {
    let inst = eds_lower::eds_instance(delta_prime, n).ok_or_else(|| CoreError::BadParameters {
        reason: format!(
            "no EDS instance with delta_prime={delta_prime}, n={n} (n must be a multiple of 4k-1)"
        ),
    })?;
    let rep = eds_lower::lower_bound_report_budgeted(&inst, budget)?;
    let bound = eds_lower::eds_bound(delta_prime);
    let mut f = Vec::new();
    push_num(&mut f, "n", rep.n as u64);
    push_num(&mut f, "delta_prime", delta_prime as u64);
    push_num(&mut f, "lift_degree", inst.lift_degree as u64);
    push_num(&mut f, "opt", rep.opt as u64);
    push_num(&mut f, "min_symmetric", rep.min_symmetric as u64);
    push_num(&mut f, "view_classes", rep.view_classes as u64);
    push_ratio(&mut f, "ratio", rep.ratio);
    push_ratio(&mut f, "bound", bound);
    f.push(("tight".into(), Json::Bool(rep.ratio == bound)));
    Ok(Json::Obj(f))
}

fn run_homogeneous(k: usize, r: usize, m: u64, budget: &RunBudget) -> Result<Json, CoreError> {
    let h = homogeneous::construct_budgeted(k, r, m, budget)?;
    let mut f = Vec::new();
    push_num(&mut f, "k", k as u64);
    push_num(&mut f, "r", r as u64);
    push_num(&mut f, "m", h.modulus);
    push_num(&mut f, "level", h.level as u64);
    push_num(&mut f, "nodes", h.node_count() as u64);
    push_num(&mut f, "homogeneous_count", h.homogeneous_count as u64);
    let gens = h
        .gens
        .iter()
        .map(|g| Json::Arr(g.iter().map(|&c| Json::Num(c as f64)).collect()))
        .collect();
    f.push(("gens".into(), Json::Arr(gens)));
    push_ratio(&mut f, "fraction", h.fraction());
    push_ratio(&mut f, "inner_bound", h.inner_bound());
    Ok(Json::Obj(f))
}

fn run_hom_lift(cycle: usize, m: u64, budget: &RunBudget) -> Result<Json, CoreError> {
    let h = homogeneous::construct_budgeted(1, 1, m, budget)?;
    let g = gen::directed_cycle(cycle);
    let lift = hom_lift::homogeneous_lift_budgeted(&g, &h, budget)?;
    let mut f = Vec::new();
    push_num(&mut f, "base_nodes", g.node_count() as u64);
    push_num(&mut f, "m", m);
    push_num(&mut f, "lift_nodes", lift.node_count() as u64);
    push_ratio(&mut f, "good_fraction", lift.good_fraction());
    push_ratio(&mut f, "alpha", h.fraction());
    f.push(("meets_alpha".into(), Json::Bool(lift.good_fraction() >= h.fraction())));
    Ok(Json::Obj(f))
}

fn run_oi_to_po(algo: OiAlgo, cycle: usize, m: u64, budget: &RunBudget) -> Result<Json, CoreError> {
    let h = homogeneous::construct_budgeted(1, 1, m, budget)?;
    let b = oi_to_po::PoFromOi::from_homogeneous(algo, &h)?;
    let g = gen::directed_cycle(cycle);
    let bits = require_complete(run::po_vertex_budgeted(&g, &b, budget)?, "B on cycle")?;
    let set = run::to_vertex_set(&bits);
    let und = g.underlying_simple();
    let feasible = algo.feasible(&und, &set);
    let opt = algo.opt_value(&und);
    let ratio = approx_ratio(set.len(), opt, algo.goal());
    let mut f = Vec::new();
    f.push(("algo".into(), Json::Str(algo.name().into())));
    push_num(&mut f, "nodes", g.node_count() as u64);
    push_num(&mut f, "m", m);
    push_num(&mut f, "selected", set.len() as u64);
    f.push(("feasible".into(), Json::Bool(feasible)));
    push_num(&mut f, "opt", opt as u64);
    match ratio {
        Some(r) => push_ratio(&mut f, "ratio", r),
        None => f.push(("ratio".into(), Json::Null)),
    }
    Ok(Json::Obj(f))
}

fn run_ramsey(
    algo: IdAlgo,
    universe: u64,
    r: usize,
    m: usize,
    budget: &RunBudget,
) -> Result<Json, CoreError> {
    let ids: Vec<u64> = (1..=universe).collect();
    let Some((oi, j, bit)) = ramsey::ramsey_cycle_transfer_budgeted(algo, &ids, r, m, budget)?
    else {
        return Ok(Json::Obj(vec![
            ("algo".into(), Json::Str(algo.name().into())),
            ("found".into(), Json::Bool(false)),
        ]));
    };
    let verified = ramsey::verify_monochromatic(&algo, &j, r, bit);
    // A with identifiers from J on C_{|J|}, vs the induced OI algorithm B
    // on the same cycle ordered by the identifier order (the e10 check).
    let g = gen::cycle(j.len().max(3));
    let a_out = require_complete(run::id_vertex_budgeted(&g, &j, &algo, budget)?, "A on cycle")?;
    let rank = {
        let mut order: Vec<(usize, u64)> = j.iter().copied().enumerate().collect();
        order.sort_by_key(|&(_, id)| id);
        let mut rank = vec![0usize; j.len()];
        for (p, (v, _)) in order.into_iter().enumerate() {
            if let Some(slot) = rank.get_mut(v) {
                *slot = p;
            }
        }
        rank
    };
    let b_out = require_complete(run::oi_vertex_budgeted(&g, &rank, &oi, budget)?, "B on cycle")?;
    let agreement = run::agreement(&a_out, &b_out);
    Ok(Json::Obj(vec![
        ("algo".into(), Json::Str(algo.name().into())),
        ("found".into(), Json::Bool(true)),
        ("j".into(), Json::Arr(j.iter().map(|&x| Json::Num(x as f64)).collect())),
        ("forced_bit".into(), Json::Bool(bit)),
        ("verified".into(), Json::Bool(verified)),
        ("agreement_f64".into(), Json::Num(agreement)),
    ]))
}

fn run_transfer(algo: OiAlgo, cycle: usize, m: u64, budget: &RunBudget) -> Result<Json, CoreError> {
    let h = homogeneous::construct_budgeted(1, 1, m, budget)?;
    let g = gen::directed_cycle(cycle);
    let (rep, _lift) = transfer::transfer_vertex_budgeted(
        &g,
        &h,
        algo,
        algo.goal(),
        |und, x| algo.feasible(und, x),
        |und| algo.opt_value(und),
        budget,
    )?;
    let mut f = Vec::new();
    f.push(("algo".into(), Json::Str(algo.name().into())));
    push_num(&mut f, "base_nodes", g.node_count() as u64);
    push_num(&mut f, "m", m);
    push_num(&mut f, "lift_nodes", rep.lift_nodes as u64);
    push_ratio(&mut f, "agreement", rep.agreement);
    push_ratio(&mut f, "alpha", h.fraction());
    push_num(&mut f, "a_on_lift", rep.a_on_lift as u64);
    push_num(&mut f, "b_on_lift", rep.b_on_lift as u64);
    push_num(&mut f, "b_size", rep.b_on_g.len() as u64);
    f.push(("feasible".into(), Json::Bool(rep.feasible)));
    push_num(&mut f, "opt", rep.opt as u64);
    match rep.ratio {
        Some(r) => push_ratio(&mut f, "ratio", r),
        None => f.push(("ratio".into(), Json::Null)),
    }
    Ok(Json::Obj(f))
}

fn run_census(
    family: CensusFamily,
    radius: usize,
    budget: &RunBudget,
    store: Option<&StoreHandle>,
) -> Result<Json, CoreError> {
    let d = family.build();
    let mut cache = ViewCache::new(&d);
    let mut per_radius = Vec::new();
    for r in 1..=radius {
        // the census itself only honours the cache cap; deadline,
        // cancellation and the round limit (one round per radius) are
        // checked here between radii
        if let Some(t) = budget.check_interrupt().or_else(|| budget.check_rounds(r - 1)) {
            return Err(CoreError::Truncated { stage: "census", reason: t.publish() });
        }
        let census = match store {
            Some(s) => cache.try_census_stored(r, budget.cache_cap(), s),
            None => cache.try_census(r, budget.cache_cap()),
        }
        .map_err(|t| CoreError::Truncated { stage: "census", reason: t.publish() })?;
        per_radius.push(Json::Obj(vec![
            ("radius".into(), Json::Num(r as f64)),
            ("classes".into(), Json::Num(census.len() as f64)),
        ]));
    }
    Ok(Json::Obj(vec![
        ("family".into(), Json::Str(family.describe())),
        ("nodes".into(), Json::Num(d.node_count() as f64)),
        ("radius".into(), Json::Num(radius as f64)),
        ("per_radius".into(), Json::Arr(per_radius)),
    ]))
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;
    use std::time::Duration;

    use locap_graph::budget::{CancelToken, ManualClock};

    use super::*;

    fn parse_req(pipeline: &str, params: &str) -> Result<PipelineRequest, RequestError> {
        PipelineRequest::parse(pipeline, &Json::parse(params).expect("test params are valid"))
    }

    #[test]
    fn unknown_pipeline_is_typed() {
        let e = parse_req("frobnicate", "{}").expect_err("unknown pipeline must fail");
        assert_eq!(e.kind(), "unknown_pipeline");
        assert!(e.to_string().contains("frobnicate"));
    }

    #[test]
    fn missing_and_bad_params_are_typed() {
        let e = parse_req("eds-lower", "{}").expect_err("n is required");
        assert_eq!(e.kind(), "missing_param");
        let e = parse_req("eds-lower", "{\"n\": \"nine\"}").expect_err("n must be an integer");
        assert_eq!(e.kind(), "bad_param");
        let e = parse_req("hom-lift", "{\"cycle\": 2, \"m\": 6}").expect_err("cycle >= 3");
        assert_eq!(e.kind(), "bad_param");
        let e = parse_req("oi-to-po", "{\"algo\": \"nope\", \"cycle\": 9}")
            .expect_err("unknown algorithm");
        assert_eq!(e.kind(), "bad_param");
        let big = format!("{{\"n\": {}}}", MAX_PARAM + 1);
        let e = parse_req("eds-lower", &big).expect_err("cap enforced");
        assert_eq!(e.kind(), "bad_param");
    }

    #[test]
    fn params_round_trip() {
        for (pipeline, params) in [
            ("eds-lower", "{\"delta_prime\": 2, \"n\": 9}"),
            ("homogeneous", "{\"k\": 1, \"r\": 1, \"m\": 6}"),
            ("hom-lift", "{\"cycle\": 3, \"m\": 6}"),
            ("oi-to-po", "{\"algo\": \"vc-non-min\", \"cycle\": 9, \"m\": 6}"),
            ("ramsey", "{\"algo\": \"local-max\", \"universe\": 20, \"r\": 1, \"m\": 5}"),
            ("transfer", "{\"algo\": \"is-local-min\", \"cycle\": 9, \"m\": 6}"),
            ("census", "{\"family\": \"directed-cycle\", \"n\": 12, \"radius\": 2}"),
            ("census", "{\"family\": \"toroidal\", \"k\": 2, \"m\": 3, \"radius\": 1}"),
        ] {
            let req = parse_req(pipeline, params).expect("valid request");
            let back = PipelineRequest::parse(pipeline, &req.params_json())
                .expect("serialised params re-parse");
            assert_eq!(req, back, "{pipeline} round-trips");
        }
    }

    #[test]
    fn eds_lower_runs_and_reports_tight_ratio() {
        let req = parse_req("eds-lower", "{\"n\": 9}").expect("valid request");
        let out = req.run(&RunBudget::unlimited()).expect("pipeline succeeds");
        assert_eq!(out.get("ratio").and_then(Json::as_str), Some("3"));
        assert_eq!(out.get("tight"), Some(&Json::Bool(true)));
    }

    #[test]
    fn census_runs() {
        let req = parse_req("census", "{\"family\": \"directed-cycle\", \"n\": 12}")
            .expect("valid request");
        let out = req.run(&RunBudget::unlimited()).expect("pipeline succeeds");
        assert_eq!(out.get("nodes").and_then(Json::as_u64), Some(12));
        let rows = out.get("per_radius").and_then(Json::as_array).expect("rows");
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn every_pipeline_truncates_on_expired_deadline() {
        let clock = Arc::new(ManualClock::new());
        let budget = RunBudget::unlimited().with_deadline(Duration::from_millis(1), clock.clone());
        clock.advance(Duration::from_millis(5));
        for (pipeline, params) in [
            ("eds-lower", "{\"n\": 9}"),
            ("homogeneous", "{\"m\": 6}"),
            ("hom-lift", "{\"cycle\": 3, \"m\": 6}"),
            ("oi-to-po", "{\"algo\": \"vc-non-min\", \"cycle\": 9}"),
            ("ramsey", "{\"algo\": \"local-max\", \"m\": 5}"),
            ("transfer", "{\"algo\": \"vc-non-min\", \"cycle\": 9}"),
            ("census", "{\"family\": \"directed-cycle\", \"n\": 12}"),
        ] {
            let req = parse_req(pipeline, params).expect("valid request");
            let err = req.run(&budget).expect_err("expired deadline must truncate");
            assert!(
                matches!(err, CoreError::Truncated { .. }),
                "{pipeline}: expected truncation, got {err}"
            );
        }
    }

    #[test]
    fn stored_runs_answer_warm_and_match_the_cold_result() {
        let dir = std::env::temp_dir().join(format!("locap-core-store-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = StoreHandle::open(&dir).expect("open scratch store");
        for (pipeline, params) in [
            ("eds-lower", "{\"n\": 9}"),
            ("census", "{\"family\": \"directed-cycle\", \"n\": 12, \"radius\": 2}"),
        ] {
            let req = parse_req(pipeline, params).expect("valid request");
            let before = store.stats();
            let cold = req
                .run_with_store(&RunBudget::unlimited(), Some(&store))
                .expect("cold run succeeds");
            assert_eq!(cold, req.run(&RunBudget::unlimited()).expect("storeless run"));
            let warm = req
                .run_with_store(&RunBudget::unlimited(), Some(&store))
                .expect("warm run succeeds");
            assert_eq!(warm, cold, "{pipeline}: warm result identical");
            let after = store.stats();
            assert!(after.warm_hit > before.warm_hit, "{pipeline}: served from store");
            assert!(after.write > before.write, "{pipeline}: cold run wrote back");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cancellation_truncates_before_work() {
        let token = CancelToken::new();
        token.cancel();
        let budget = RunBudget::unlimited().with_cancel(token);
        let req = parse_req("homogeneous", "{\"m\": 6}").expect("valid request");
        let err = req.run(&budget).expect_err("cancelled budget must truncate");
        assert!(err.to_string().contains("cancelled"), "got {err}");
    }
}
