use std::fmt;

/// Errors arising from graph construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node index was out of range.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// Number of nodes in the graph.
        n: usize,
    },
    /// A self-loop `{v, v}` was supplied where simple graphs are required.
    SelfLoop {
        /// The node with the loop.
        node: usize,
    },
    /// A duplicate edge was supplied.
    DuplicateEdge {
        /// One endpoint.
        u: usize,
        /// Other endpoint.
        v: usize,
    },
    /// An edge label was out of range of the alphabet.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// Alphabet size.
        alphabet: usize,
    },
    /// A proper labelling constraint was violated: a node already has an
    /// out-edge (or in-edge) with the given label.
    ImproperLabelling {
        /// Node at which the clash occurs.
        node: usize,
        /// The clashing label.
        label: usize,
        /// `true` if the clash is among outgoing edges.
        outgoing: bool,
    },
    /// A port numbering was not a permutation of the incident edges.
    BadPortNumbering {
        /// Node with the invalid numbering.
        node: usize,
    },
    /// An orientation did not cover each edge exactly once.
    BadOrientation {
        /// Description of the defect.
        reason: String,
    },
    /// A vertex order was not a permutation of `0..n`.
    BadOrder {
        /// Description of the defect.
        reason: String,
    },
    /// Construction parameters were invalid (e.g. odd degree sum).
    BadParameters {
        /// Description of the defect.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::DuplicateEdge { u, v } => write!(f, "duplicate edge {{{u}, {v}}}"),
            GraphError::LabelOutOfRange { label, alphabet } => {
                write!(f, "label {label} out of range for alphabet of size {alphabet}")
            }
            GraphError::ImproperLabelling { node, label, outgoing } => write!(
                f,
                "improper labelling: node {node} already has an {} edge with label {label}",
                if *outgoing { "outgoing" } else { "incoming" }
            ),
            GraphError::BadPortNumbering { node } => {
                write!(f, "port numbering at node {node} is not a permutation of its neighbours")
            }
            GraphError::BadOrientation { reason } => write!(f, "bad orientation: {reason}"),
            GraphError::BadOrder { reason } => write!(f, "bad vertex order: {reason}"),
            GraphError::BadParameters { reason } => write!(f, "bad parameters: {reason}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::NodeOutOfRange { node: 7, n: 3 };
        assert!(e.to_string().contains("node 7"));
        let e = GraphError::SelfLoop { node: 1 };
        assert!(e.to_string().contains("self-loop"));
        let e = GraphError::DuplicateEdge { u: 1, v: 2 };
        assert!(e.to_string().contains("duplicate"));
        let e = GraphError::ImproperLabelling { node: 0, label: 2, outgoing: true };
        assert!(e.to_string().contains("outgoing"));
        let e = GraphError::ImproperLabelling { node: 0, label: 2, outgoing: false };
        assert!(e.to_string().contains("incoming"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> =
            Box::new(GraphError::BadParameters { reason: "x".into() });
        assert!(e.to_string().contains("bad parameters"));
    }
}
