//! The five contract rules, run over lexed token streams.
//!
//! Every rule is a linear scan over the significant tokens of a file
//! (trivia stripped, literals opaque), with the test / `# Panics`
//! regions from [`crate::source`] masking exempt code. L3 and the
//! duplicate-registration half of the counter discipline need the whole
//! workspace, so [`analyze_files`] runs per-file rules first and then a
//! cross-file pass over the collected metric-construction sites.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::Config;
use crate::diag::Diagnostic;
use crate::lexer::{str_value, TokenKind};
use crate::source::FileInfo;

/// Keywords that may legally precede `[` without forming an indexing
/// expression (`return [..]`, `match x { .. }`, array types, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "Self", "static", "struct", "super", "trait", "type", "union",
    "unsafe", "use", "where", "while", "yield",
];

/// Macro-call names L1 forbids in the execution core.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Runs every rule over `files` (`(repo-relative path, contents)`
/// pairs) and returns the diagnostics sorted by `(file, line, col,
/// rule)`. This is the pure core of the analyzer — the CLI wraps it
/// with filesystem walking and baseline ratcheting.
pub fn analyze_files(files: &[(String, String)], cfg: &Config) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut metric_sites: Vec<MetricSite> = Vec::new();
    for (path, text) in files {
        let info = FileInfo::new(path.clone(), text.clone());
        check_panic_discipline(&info, cfg, &mut diags);
        check_clock_discipline(&info, cfg, &mut diags);
        collect_metric_sites(&info, cfg, &mut metric_sites, &mut diags);
        check_forbid_unsafe(&info, &mut diags);
        check_budget_pairing(&info, cfg, &mut diags);
    }
    check_duplicate_registration(&metric_sites, &mut diags);
    diags.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    diags
}

fn push(diags: &mut Vec<Diagnostic>, rule: &'static str, f: &FileInfo, off: usize, msg: String) {
    let (line, col) = f.line_col(off);
    diags.push(Diagnostic::new(rule, &f.path, line, col, msg));
}

/// L1: no panicking constructs in the execution core.
fn check_panic_discipline(f: &FileInfo, cfg: &Config, diags: &mut Vec<Diagnostic>) {
    if !cfg.in_panic_scope(&f.path) {
        return;
    }
    let n = f.sig.len();
    for i in 0..n {
        let off = f.sig_start(i);
        if f.in_test(off) || f.in_panics_fn(off) {
            continue;
        }
        match f.sig_kind(i) {
            TokenKind::Ident => {
                let name = f.sig_text(i);
                let prev_dot = i > 0 && f.sig_kind(i - 1) == TokenKind::Punct(b'.');
                let next_paren = i + 1 < n && f.sig_kind(i + 1) == TokenKind::Punct(b'(');
                let next_bang = i + 1 < n && f.sig_kind(i + 1) == TokenKind::Punct(b'!');
                if prev_dot && next_paren && matches!(name, "unwrap" | "expect") {
                    push(
                        diags,
                        "L1",
                        f,
                        off,
                        format!(
                            ".{name}() in the execution core — return a typed \
                             RunError/CoreError (or document the contract under `# Panics`)"
                        ),
                    );
                } else if next_bang && PANIC_MACROS.contains(&name) {
                    push(
                        diags,
                        "L1",
                        f,
                        off,
                        format!(
                            "{name}! in the execution core — return a typed error (or \
                             document the contract under `# Panics`)"
                        ),
                    );
                }
            }
            TokenKind::Punct(b'[') if i > 0 => {
                let indexee = match f.sig_kind(i - 1) {
                    TokenKind::Ident if !NON_INDEX_KEYWORDS.contains(&f.sig_text(i - 1)) => {
                        Some(f.sig_text(i - 1))
                    }
                    TokenKind::Punct(b')') | TokenKind::Punct(b']') => Some(""),
                    _ => None,
                };
                if let Some(base) = indexee {
                    let what = if base.is_empty() {
                        "direct slice indexing".to_string()
                    } else {
                        format!("direct slice indexing `{base}[…]`")
                    };
                    push(
                        diags,
                        "L1",
                        f,
                        off,
                        format!("{what} in the execution core — prefer .get()/error paths"),
                    );
                }
            }
            _ => {}
        }
    }
}

/// L2: wall-clock reads only at allowlisted sites.
fn check_clock_discipline(f: &FileInfo, cfg: &Config, diags: &mut Vec<Diagnostic>) {
    let n = f.sig.len();
    let mut seen: BTreeMap<&'static str, usize> = BTreeMap::new();
    for i in 0..n.saturating_sub(2) {
        if f.sig_kind(i) != TokenKind::Ident
            || f.sig_kind(i + 1) != TokenKind::ColonColon
            || f.sig_kind(i + 2) != TokenKind::Ident
            || f.sig_text(i + 2) != "now"
        {
            continue;
        }
        let symbol: &'static str = match f.sig_text(i) {
            "Instant" => "Instant::now",
            "SystemTime" => "SystemTime::now",
            _ => continue,
        };
        let off = f.sig_start(i);
        if f.in_test(off) {
            continue;
        }
        let count = seen.entry(symbol).or_insert(0);
        *count += 1;
        match cfg.clock_allowance(&f.path, symbol) {
            Some(allow) if *count <= allow.max => {}
            Some(allow) => push(
                diags,
                "L2",
                f,
                off,
                format!(
                    "{symbol} beyond this file's allowance of {} (allowlisted because: {}) — \
                     route timing through the budget clock or locap_bench::timed",
                    allow.max, allow.reason
                ),
            ),
            None => push(
                diags,
                "L2",
                f,
                off,
                format!(
                    "{symbol} outside the clock allowlist — take a MonotonicClock (budgets) or \
                     use locap_bench::timed so runs stay deterministic"
                ),
            ),
        }
    }
}

/// One obs metric construction site, keyed for duplicate detection.
#[derive(Debug)]
struct MetricSite {
    /// `name:<resolved>` for const names, `fmt:<template>` for
    /// `format!` families.
    key: String,
    file: String,
    line: usize,
    col: usize,
}

/// L3 (per-file half): metric names must be consts or const-`format!`
/// templates; collects construction sites for the cross-file pass.
fn collect_metric_sites(
    f: &FileInfo,
    cfg: &Config,
    sites: &mut Vec<MetricSite>,
    diags: &mut Vec<Diagnostic>,
) {
    if cfg.counter_exempt(&f.path) {
        return;
    }
    let consts = const_str_decls(f);
    let n = f.sig.len();
    for i in 0..n {
        if f.sig_kind(i) != TokenKind::Ident
            || !matches!(f.sig_text(i), "counter" | "gauge" | "span_histogram" | "latency")
        {
            continue;
        }
        let qualified =
            i > 0 && matches!(f.sig_kind(i - 1), TokenKind::ColonColon | TokenKind::Punct(b'.'));
        let called = i + 1 < n && f.sig_kind(i + 1) == TokenKind::Punct(b'(');
        if !qualified || !called {
            continue;
        }
        let off = f.sig_start(i);
        if f.in_test(off) {
            continue;
        }
        // first argument, skipping leading `&`
        let mut a = i + 2;
        while a < n && f.sig_kind(a) == TokenKind::Punct(b'&') {
            a += 1;
        }
        if a >= n {
            continue;
        }
        let (line, col) = f.line_col(off);
        let record = |sites: &mut Vec<MetricSite>, key: String| {
            sites.push(MetricSite { key, file: f.path.clone(), line, col });
        };
        match f.sig_kind(a) {
            TokenKind::Str => push(
                diags,
                "L3",
                f,
                off,
                format!(
                    "inline metric name {} — declare it as a `const` so the registry has one \
                     authoritative spelling",
                    f.sig_text(a)
                ),
            ),
            TokenKind::Ident if f.sig_text(a) == "format" => {
                // &format!("template", …): the template is the family name
                let template = (a + 1..n.min(a + 4))
                    .find(|&j| f.sig_kind(j) == TokenKind::Str)
                    .and_then(|j| str_value(f.sig_text(j)));
                match template {
                    Some(t) => record(sites, format!("fmt:{t}")),
                    None => push(
                        diags,
                        "L3",
                        f,
                        off,
                        "format!-built metric name without a literal template — the name \
                         family must be statically visible"
                            .into(),
                    ),
                }
            }
            TokenKind::Ident => {
                let name = f.sig_text(a);
                match consts.get(name) {
                    Some(value) => record(sites, format!("name:{value}")),
                    None => push(
                        diags,
                        "L3",
                        f,
                        off,
                        format!(
                            "metric name `{name}` does not resolve to a `const &str` declared \
                             in this file"
                        ),
                    ),
                }
            }
            _ => push(
                diags,
                "L3",
                f,
                off,
                "metric name must be a `const` identifier or a literal format! template".into(),
            ),
        }
    }
}

/// `const NAME: … = "value";` declarations in a file.
fn const_str_decls(f: &FileInfo) -> BTreeMap<&str, String> {
    let mut out = BTreeMap::new();
    let n = f.sig.len();
    for i in 0..n.saturating_sub(3) {
        if f.sig_kind(i) != TokenKind::Ident || f.sig_text(i) != "const" {
            continue;
        }
        if f.sig_kind(i + 1) != TokenKind::Ident || f.sig_kind(i + 2) != TokenKind::Punct(b':') {
            continue;
        }
        // scan a short window for `= "literal"`
        for j in i + 3..n.min(i + 12) {
            match f.sig_kind(j) {
                TokenKind::Punct(b'=') => {
                    if j + 1 < n && f.sig_kind(j + 1) == TokenKind::Str {
                        if let Some(v) = str_value(f.sig_text(j + 1)) {
                            out.insert(f.sig_text(i + 1), v);
                        }
                    }
                    break;
                }
                TokenKind::Punct(b';') | TokenKind::Punct(b'{') => break,
                _ => {}
            }
        }
    }
    out
}

/// L3 (cross-file half): each metric name/family has exactly one
/// construction site in the workspace.
fn check_duplicate_registration(sites: &[MetricSite], diags: &mut Vec<Diagnostic>) {
    let mut by_key: BTreeMap<&str, Vec<&MetricSite>> = BTreeMap::new();
    for s in sites {
        by_key.entry(&s.key).or_default().push(s);
    }
    for (key, group) in by_key {
        if group.len() <= 1 {
            continue;
        }
        let mut sorted: Vec<&&MetricSite> = group.iter().collect();
        sorted.sort_by_key(|s| (&s.file, s.line, s.col));
        let first = sorted[0];
        let name = key.split_once(':').map_or(key, |(_, v)| v);
        for dup in &sorted[1..] {
            diags.push(Diagnostic::new(
                "L3",
                &dup.file,
                dup.line,
                dup.col,
                format!(
                    "metric name \"{name}\" is constructed at {} site(s); hoist the handle — \
                     first construction at {}:{} (the publish-twice bug class)",
                    sorted.len(),
                    first.file,
                    first.line
                ),
            ));
        }
    }
}

/// L4: crate roots carry `#![forbid(unsafe_code)]`.
fn check_forbid_unsafe(f: &FileInfo, diags: &mut Vec<Diagnostic>) {
    if !is_crate_root(&f.path) {
        return;
    }
    let n = f.sig.len();
    let has_forbid = (0..n.saturating_sub(7)).any(|i| {
        f.sig_kind(i) == TokenKind::Punct(b'#')
            && f.sig_kind(i + 1) == TokenKind::Punct(b'!')
            && f.sig_kind(i + 2) == TokenKind::Punct(b'[')
            && f.sig_kind(i + 3) == TokenKind::Ident
            && f.sig_text(i + 3) == "forbid"
            && f.sig_kind(i + 4) == TokenKind::Punct(b'(')
            && f.sig_text(i + 5) == "unsafe_code"
            && f.sig_kind(i + 6) == TokenKind::Punct(b')')
            && f.sig_kind(i + 7) == TokenKind::Punct(b']')
    });
    if !has_forbid {
        diags.push(Diagnostic::new(
            "L4",
            &f.path,
            1,
            1,
            "crate root lacks #![forbid(unsafe_code)] — every locap crate (including bin \
             targets, which are their own crate roots) must forbid unsafe"
                .into(),
        ));
    }
}

/// Whether `path` is a crate root the analyzer scans: `src/lib.rs`,
/// `src/main.rs` or `src/bin/*.rs` of a workspace crate.
fn is_crate_root(path: &str) -> bool {
    if !path.starts_with("crates/") {
        return false;
    }
    path.ends_with("/src/lib.rs")
        || path.ends_with("/src/main.rs")
        || (path.contains("/src/bin/") && path.ends_with(".rs"))
}

/// L5: budget pairing at file granularity.
fn check_budget_pairing(f: &FileInfo, cfg: &Config, diags: &mut Vec<Diagnostic>) {
    let fns = pub_fns(f);
    let names: BTreeSet<&str> = fns.iter().map(|(name, _)| *name).collect();
    for (name, off) in &fns {
        if let Some(base) = name.strip_suffix("_budgeted") {
            if !names.contains(base) {
                push(
                    diags,
                    "L5",
                    f,
                    *off,
                    format!(
                        "pub fn {name} has no plain delegate `{base}` in this file — every \
                         budgeted entry point needs an unlimited twin"
                    ),
                );
            }
        } else if cfg.is_entry_point_file(&f.path) {
            if let Some(base) = name.strip_suffix("_naive") {
                if names.contains(base) && !names.contains(format!("{base}_budgeted").as_str()) {
                    push(
                        diags,
                        "L5",
                        f,
                        *off,
                        format!(
                            "entry point `{base}` (with naive variant `{name}`) has no \
                             `{base}_budgeted` variant — production entry points must be \
                             boundable"
                        ),
                    );
                }
            }
        }
    }
}

/// `pub fn` names (with offsets), test regions excluded.
fn pub_fns(f: &FileInfo) -> Vec<(&str, usize)> {
    let mut out = Vec::new();
    let n = f.sig.len();
    for i in 0..n.saturating_sub(1) {
        if f.sig_kind(i) != TokenKind::Ident || f.sig_text(i) != "pub" {
            continue;
        }
        // skip a visibility qualifier: pub(crate), pub(in …), pub(super)
        let mut j = i + 1;
        if j < n && f.sig_kind(j) == TokenKind::Punct(b'(') {
            let mut depth = 0usize;
            while j < n {
                match f.sig_kind(j) {
                    TokenKind::Punct(b'(') => depth += 1,
                    TokenKind::Punct(b')') => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // skip fn qualifiers
        while j < n
            && f.sig_kind(j) == TokenKind::Ident
            && matches!(f.sig_text(j), "const" | "async" | "unsafe" | "extern")
        {
            j += 1;
        }
        if j + 1 < n
            && f.sig_kind(j) == TokenKind::Ident
            && f.sig_text(j) == "fn"
            && f.sig_kind(j + 1) == TokenKind::Ident
            && !f.in_test(f.sig_start(i))
        {
            out.push((f.sig_text(j + 1), f.sig_start(j + 1)));
        }
    }
    out
}
