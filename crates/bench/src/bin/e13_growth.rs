//! E13 — §5.2: why the construction needs groups of polynomial growth.
//!
//! The paper: "to implement our strategy, we should choose U to be a
//! Cayley graph of (a group of) polynomial growth" — the free group's
//! exponential growth would leave every finite cut with a constant-
//! fraction boundary. We tabulate exact ball sizes of U₂/U₃ against the
//! free-group tree and the box cap (2r+1)^d of Eq. (2).

#![forbid(unsafe_code)]

use locap_bench::{cells, hprintln, Table};
use locap_groups::growth::{ball_sizes, box_cap, free_ball_size, growth_exponents};
use locap_groups::IterGroup;

fn main() {
    locap_bench::run(
        "e13_growth",
        "E13",
        "§5.2 — polynomial growth of U vs exponential growth of the free group",
        body,
    );
}

fn body() {
    hprintln!("\nball sizes |B(1, r)|, k = 2 generators:\n");
    let u2 = IterGroup::infinite(2).unwrap();
    let gens2 = vec![vec![1i64, 0, 0], vec![0, 0, 1]];
    let sizes2 = ball_sizes(&u2, &gens2, 8);

    let u3 = IterGroup::infinite(3).unwrap();
    let gens3 = vec![vec![1i64, 0, 0, 0, 0, 0, 0], vec![0, 0, 0, 0, 0, 0, 1]];
    let sizes3 = ball_sizes(&u3, &gens3, 6);

    let mut t =
        Table::new(&["r", "U₂ (d=3)", "cap (2r+1)³", "U₃ (d=7)", "cap (2r+1)⁷", "free F₂ (tree)"]);
    for r in 0..=8usize {
        t.row(&cells([
            &r,
            &sizes2.get(r).map(|s| s.to_string()).unwrap_or_default(),
            &box_cap(3, r),
            &sizes3.get(r).map(|s| s.to_string()).unwrap_or_default(),
            &box_cap(7, r),
            &free_ball_size(2, r),
        ]));
    }
    t.print();

    hprintln!("\nempirical growth exponents (≈ constant d for polynomial growth):");
    hprintln!(
        "  U₂: {:?}",
        growth_exponents(&sizes2)
            .iter()
            .map(|x| (x * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    hprintln!(
        "  U₃: {:?}",
        growth_exponents(&sizes3)
            .iter()
            .map(|x| (x * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    hprintln!("\nconsequence (the paper's cut argument): cutting U down to the box");
    hprintln!("[0, m)^d leaves boundary fraction 1 − ((m−2r)/m)^d → 0, which is");
    hprintln!("impossible in the free group where |B(r)| grows like 3^r.");
}
