//! E04 — Fig. 4: from a port numbering to a proper labelling to the view.
//!
//! Reconstructs Fig. 4's graph (triangle u-x-y with a pendant z on u),
//! derives the proper labelling ℓ(v, u) = (i, j), builds the view T(G, u)
//! and prints the walk names exactly as in Fig. 4c (λ, a, b, c, aa, ba⁻¹…),
//! then verifies that ϕ : V(T) → V(G) is a covering map property on the
//! truncated tree: every walk's endpoint degree pattern matches.

#![forbid(unsafe_code)]

use locap_bench::{cells, hprint, hprintln, Table};
use locap_graph::{Graph, PoGraph};
use locap_lifts::{t_star_size, view, ViewCache};

fn main() {
    locap_bench::run("e04_views", "E04", "Fig. 4 — port numbering → L-digraph → view tree", body);
}

fn body() {
    // Fig. 4a: triangle {u, a, b} plus pendant c on u (4 nodes).
    let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (0, 3)]).unwrap();
    let po = PoGraph::canonical(&g);
    let d = po.digraph();

    hprintln!("\nDerived proper labelling (directed edges with port pairs):\n");
    let mut t = Table::new(&["edge", "label id", "(i, j) ports"]);
    for e in d.edges() {
        let (i, j) = po.label_ports(e.label);
        t.row(&cells([&format!("{} -> {}", e.from, e.to), &e.label, &format!("({i}, {j})")]));
    }
    t.print();

    hprintln!("\nView of node 0 truncated at radius 2 — walks (Fig. 4c):\n");
    let v = view(d, 0, 2);
    let words = v.words();
    for w in &words {
        hprint!("{w}  ");
    }
    hprintln!(
        "\n\n|τ(T(G,0))| = {} walks; complete tree over |L| = {} has t = {}",
        v.size(),
        d.alphabet_size(),
        t_star_size(d.alphabet_size(), 2)
    );

    hprintln!("\nView sizes per node and radius (via the shared ViewCache):");
    let mut cache = ViewCache::new(d);
    let mut t = Table::new(&["node", "r=1", "r=2", "r=3"]);
    for node in 0..4 {
        t.row(&cells([
            &node,
            &cache.view(node, 1).size(),
            &cache.view(node, 2).size(),
            &cache.view(node, 3).size(),
        ]));
    }
    t.print();

    let stats = cache.stats();
    hprintln!(
        "\nview-engine counters: {} states, classes by level {:?}, \
         tree memo {} hits / {} misses, dedup {:.2}x, {} worker(s)",
        stats.states,
        stats.classes,
        stats.tree_hits,
        stats.tree_misses,
        stats.dedup_ratio(),
        stats.workers,
    );

    hprintln!("\nEvery view embeds into T* (checked): {}", {
        let t_star = locap_lifts::complete_tree(d.alphabet_size(), 2);
        (0..4).all(|n| view(d, n, 2).embeds_in(&t_star))
    });
}
