//! The `locap-lint` CLI.
//!
//! ```text
//! locap-lint check [--root DIR] [--baseline FILE] [--json FILE|-] [--update-baseline] [--fix]
//! locap-lint validate FILE [--root DIR]
//! locap-lint rules
//! ```
//!
//! `check` runs the workspace analyzer in ratchet mode: exit 0 when
//! every violation is grandfathered by `lint_baseline.json`, exit 1 on
//! any new violation or any unrecorded paydown. `--update-baseline`
//! rewrites the baseline to the current debt (keeping reasons, flagging
//! new entries with a TODO a human must replace). `--fix` applies the
//! mechanical fixes first (missing `#![forbid(unsafe_code)]`, L3 const
//! hoisting, `lock-rank=TODO` scaffolding — which the TODO check then
//! rejects until a human picks the rank), then runs the normal check
//! on the fixed tree; a second `--fix` run is a no-op. When
//! `GITHUB_STEP_SUMMARY` is set, `check` appends a per-rule markdown
//! table with the baseline delta to it.
//!
//! `validate` checks a JSON document with the in-repo parser: lint
//! diagnostics documents against the lint schema, and baseline
//! documents (recognized by their `entries` array) for shape *and*
//! staleness — exit 2 if any baseline entry points at a file that no
//! longer exists, so renamed-away debt can't linger. `rules` prints
//! the catalogue.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use locap_lint::{diag, Baseline, Config, FixEdit, Section};
use locap_obs as obs;
use locap_obs::json::Json;

/// Scanned-file count gauge name.
const OBS_FILES: &str = "lint/files";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    match strs.split_first() {
        Some((&"check", rest)) => check(rest),
        Some((&"validate", rest)) => validate(rest),
        Some((&"rules", [])) => {
            for (id, name, desc) in diag::RULES {
                println!("{id}  {name:<19} {desc}");
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage: locap-lint check [--root DIR] [--baseline FILE] [--json FILE|-] \
                 [--update-baseline] [--fix]\n       locap-lint validate FILE [--root DIR]\n       \
                 locap-lint rules"
            );
            ExitCode::from(2)
        }
    }
}

fn default_root() -> PathBuf {
    // the crate lives at <root>/crates/lint, so the workspace root is
    // fixed at compile time — `cargo run -p locap-lint` works from any cwd
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn check(rest: &[&str]) -> ExitCode {
    let mut root = default_root();
    let mut baseline_path: Option<PathBuf> = None;
    let mut json_out: Option<String> = None;
    let mut update = false;
    let mut fix = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match *arg {
            "--root" => match it.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage_error("--root needs a directory"),
            },
            "--baseline" => match it.next() {
                Some(v) => baseline_path = Some(PathBuf::from(v)),
                None => return usage_error("--baseline needs a file"),
            },
            "--json" => match it.next() {
                Some(v) => json_out = Some((*v).to_string()),
                None => return usage_error("--json needs a file (or -)"),
            },
            "--update-baseline" => update = true,
            "--fix" => fix = true,
            other => return usage_error(&format!("unknown flag {other}")),
        }
    }
    if fix {
        match apply_fixes(&root) {
            Ok((edits, files)) => {
                println!("locap-lint: applied {edits} fix edit(s) across {files} file(s)")
            }
            Err(e) => {
                eprintln!("locap-lint: fix failed: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint_baseline.json"));
    let baseline = match Baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("locap-lint: failed to load baseline: {e}");
            return ExitCode::from(2);
        }
    };
    let run = match locap_lint::run_check(&root, &Config::locap(), &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("locap-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    obs::gauge(OBS_FILES).set(run.summary.files as i64);
    for (id, _, _) in diag::RULES {
        let count = run.diagnostics.iter().filter(|d| d.rule == *id).count() as u64;
        obs::counter(&format!("lint/diagnostics/{id}")).add(count);
    }

    if update {
        let updated = baseline.updated(&run.diagnostics);
        let todo = updated.entries.iter().filter(|e| e.reason.starts_with("TODO")).count();
        if let Err(e) = std::fs::write(&baseline_path, updated.render()) {
            eprintln!("locap-lint: failed to write baseline: {e}");
            return ExitCode::from(2);
        }
        println!(
            "locap-lint: wrote {} entr(ies) to {}{}",
            updated.entries.len(),
            baseline_path.display(),
            if todo > 0 {
                format!(" — {todo} new entr(ies) need a reason before `check` passes")
            } else {
                String::new()
            }
        );
        return ExitCode::SUCCESS;
    }

    for d in &run.diagnostics {
        println!("{}", d.render());
    }
    let s = &run.summary;
    println!(
        "locap-lint: {} file(s), {} diagnostic(s) ({} baselined, {} new, {} stale baseline \
         entr(ies))",
        s.files, s.diagnostics, s.baselined, s.new, s.stale
    );
    if let Some(path) = json_out {
        let doc = diag::to_json(s, &run.diagnostics);
        if path == "-" {
            println!("{doc}");
        } else if let Err(e) = std::fs::write(&path, format!("{doc}\n")) {
            eprintln!("locap-lint: failed to write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if let Ok(summary_path) = std::env::var("GITHUB_STEP_SUMMARY") {
        if !summary_path.is_empty() {
            let md = step_summary(&run, &baseline);
            if let Err(e) = append_file(Path::new(&summary_path), &md) {
                eprintln!("locap-lint: failed to append step summary: {e}");
            }
        }
    }
    if run.passed() {
        println!("locap-lint: ratchet gate passed");
        ExitCode::SUCCESS
    } else {
        for f in &run.failures {
            eprintln!("locap-lint: FAIL {f}");
        }
        ExitCode::FAILURE
    }
}

/// Applies every mechanical fix the analyzer proposes, right-to-left
/// per file (identical edits deduplicated, overlapping edits dropped
/// keeping the earliest). Returns `(edits applied, files rewritten)`.
fn apply_fixes(root: &Path) -> Result<(usize, usize), String> {
    let files = locap_lint::collect_workspace_files(root).map_err(|e| e.to_string())?;
    let diags = locap_lint::analyze_files(&files, &Config::locap());
    let texts: BTreeMap<&str, &str> = files.iter().map(|(p, t)| (p.as_str(), t.as_str())).collect();
    let mut by_file: BTreeMap<&str, Vec<&FixEdit>> = BTreeMap::new();
    for d in &diags {
        for fx in &d.fixes {
            by_file.entry(d.file.as_str()).or_default().push(fx);
        }
    }
    let mut applied = 0;
    let mut rewritten = 0;
    for (file, mut edits) in by_file {
        let Some(orig) = texts.get(file) else { continue };
        edits.sort_by(|a, b| (a.start, a.end, &a.text).cmp(&(b.start, b.end, &b.text)));
        edits.dedup();
        let mut kept: Vec<&FixEdit> = Vec::new();
        for e in edits {
            if e.end <= orig.len() && kept.last().is_none_or(|p: &&FixEdit| p.end <= e.start) {
                kept.push(e);
            }
        }
        if kept.is_empty() {
            continue;
        }
        let mut text = (*orig).to_string();
        for e in kept.iter().rev() {
            text.replace_range(e.start..e.end, &e.text);
            applied += 1;
        }
        std::fs::write(root.join(file), text).map_err(|e| format!("{file}: {e}"))?;
        rewritten += 1;
    }
    Ok((applied, rewritten))
}

/// Renders the CI step-summary markdown: per-rule counts and the
/// baseline delta (paydowns and growth per `(rule, file)` bucket).
fn step_summary(run: &locap_lint::Run, baseline: &Baseline) -> String {
    use std::fmt::Write as _;
    let mut md = String::from(
        "## locap-lint\n\n| rule | name | diagnostics | baselined | new |\n|---|---|---|---|---|\n",
    );
    for (id, name, _) in diag::RULES {
        let total = run.diagnostics.iter().filter(|d| d.rule == *id).count();
        let baselined = run
            .diagnostics
            .iter()
            .filter(|d| d.rule == *id && d.status == locap_lint::DiagStatus::Baselined)
            .count();
        let _ = writeln!(md, "| {id} | {name} | {total} | {baselined} | {} |", total - baselined);
    }
    let mut current: BTreeMap<(&str, &str), u64> = BTreeMap::new();
    for d in &run.diagnostics {
        *current.entry((d.rule, d.file.as_str())).or_insert(0) += 1;
    }
    let mut delta_rows: Vec<String> = Vec::new();
    for e in &baseline.entries {
        let cur = current.get(&(e.rule.as_str(), e.file.as_str())).copied().unwrap_or(0);
        if cur != e.count {
            delta_rows.push(format!(
                "| {} | {} | `{}` | {} | {cur} | {} |",
                section_name(&e.file),
                e.rule,
                e.file,
                e.count,
                if cur < e.count { "paydown — record it" } else { "growth — fix it" }
            ));
        }
    }
    for ((rule, file), cur) in &current {
        let known = baseline.entries.iter().any(|e| e.rule == *rule && e.file == *file);
        if !known {
            delta_rows.push(format!(
                "| {} | {rule} | `{file}` | 0 | {cur} | new file — fix it |",
                section_name(file)
            ));
        }
    }
    if delta_rows.is_empty() {
        md.push_str("\nBaseline delta: none — debt unchanged.\n");
    } else {
        md.push_str("\n### Baseline delta\n\n| section | rule | file | baseline | current | action |\n|---|---|---|---|---|---|\n");
        for row in delta_rows {
            md.push_str(&row);
            md.push('\n');
        }
    }
    let s = &run.summary;
    let _ = writeln!(
        md,
        "\n{} file(s) scanned, {} diagnostic(s), gate **{}**.",
        s.files,
        s.diagnostics,
        if run.passed() { "passed" } else { "FAILED" }
    );
    md
}

/// Human section label of a baseline entry's file.
fn section_name(file: &str) -> &'static str {
    match Section::of(file) {
        Section::Src => "src",
        Section::Test => "tests",
    }
}

/// Appends `text` to `path`, creating it if needed.
fn append_file(path: &Path, text: &str) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    f.write_all(text.as_bytes())
}

fn validate(rest: &[&str]) -> ExitCode {
    let mut root = default_root();
    let mut file: Option<&str> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match *arg {
            "--root" => match it.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage_error("--root needs a directory"),
            },
            other if !other.starts_with("--") && file.is_none() => file = Some(other),
            other => return usage_error(&format!("unknown argument {other}")),
        }
    }
    let Some(path) = file else { return usage_error("validate needs a FILE") };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("locap-lint: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let doc = match Json::parse(text.trim()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("locap-lint: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // a baseline document carries `entries` but no `source` stamp
    if doc.get("entries").is_some() && doc.get("source").is_none() {
        return validate_baseline(path, &text, &root);
    }
    match locap_lint::validate_lint_schema(&doc) {
        Ok(()) => {
            println!("locap-lint: {path}: schema-valid lint diagnostics document");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("locap-lint: {path}: schema violation: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Validates a baseline document: parseable shape, and every entry's
/// file must still exist under `root` — exit 2 on stale entries, so a
/// rename or deletion can't leave phantom debt allowances behind.
fn validate_baseline(path: &str, text: &str, root: &Path) -> ExitCode {
    let baseline = match Baseline::parse(text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("locap-lint: {path}: baseline schema violation: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut stale = 0;
    for e in &baseline.entries {
        if !root.join(&e.file).is_file() {
            stale += 1;
            eprintln!(
                "locap-lint: {path}: stale baseline entry {} {} — file no longer exists; \
                 drop the entry (its debt is gone with the file)",
                e.rule, e.file
            );
        }
    }
    if stale > 0 {
        return ExitCode::from(2);
    }
    println!(
        "locap-lint: {path}: schema-valid baseline document, {} entr(ies), all files present",
        baseline.entries.len()
    );
    ExitCode::SUCCESS
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("locap-lint: {msg}");
    ExitCode::from(2)
}
