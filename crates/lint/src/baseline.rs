//! The ratcheting baseline: `lint_baseline.json` grandfathers existing
//! violations per `(rule, file)` with a one-line reason, and the check
//! fails on any growth *or* any unrecorded shrinkage — debt may only go
//! down, and paydowns must be committed (`--update-baseline`).
//!
//! Entries are keyed by `(rule, file)` with a count rather than by line
//! number: line-keyed baselines churn on every unrelated edit, while a
//! count-keyed ratchet is stable under refactors yet still catches each
//! newly introduced violation in a file.
//!
//! Schema 2 splits the document into two independently ratcheting
//! sections: `entries` (crate `src/` trees) and `test_entries` (files
//! under `tests/` and `benches/`, which only the concurrency rules
//! L6/L7 scan). Test debt never masks production debt and vice versa;
//! each section only goes down. Schema-1 documents (everything in
//! `entries`) still parse.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use locap_obs::json::Json;

use crate::diag::{DiagStatus, Diagnostic};

/// Which baseline section a file ratchets in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Section {
    /// Crate `src/` trees: all rules run.
    Src,
    /// `tests/` and `benches/` trees: only the concurrency rules
    /// (L6 lock-order, L7 poison-discipline) run — test code may
    /// allocate, panic and name metrics freely, but deadlocks and
    /// silent poison recovery are just as fatal there.
    Test,
}

impl Section {
    /// Section of a repo-relative `/`-separated path.
    pub fn of(path: &str) -> Section {
        if path.contains("/tests/") || path.contains("/benches/") {
            Section::Test
        } else {
            Section::Src
        }
    }

    /// The JSON key of the section's entry array.
    pub fn key(self) -> &'static str {
        match self {
            Section::Src => "entries",
            Section::Test => "test_entries",
        }
    }
}

/// Placeholder reason `--update-baseline` writes for new entries. The
/// check refuses it: a human must replace it with a real rationale.
pub const TODO_REASON: &str = "TODO: document why this debt is grandfathered";

/// One grandfathered `(rule, file)` debt bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule id (`L1`…`L5`).
    pub rule: String,
    /// Repo-relative file.
    pub file: String,
    /// Number of violations tolerated in that file.
    pub count: u64,
    /// Why the debt is acceptable for now.
    pub reason: String,
}

/// The parsed baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Entries, sorted by `(rule, file)`.
    pub entries: Vec<BaselineEntry>,
}

/// Outcome of comparing a run against the baseline.
#[derive(Debug, Clone, Default)]
pub struct RatchetOutcome {
    /// Human-readable ratchet failures (growth, stale debt, missing
    /// reasons). Empty means the ratchet passes.
    pub failures: Vec<String>,
    /// Count of stale entries (debt shrank without a baseline update).
    pub stale: u64,
}

impl Baseline {
    /// Loads a baseline file; a missing file is an empty baseline.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Baseline::default()),
            Err(e) => return Err(format!("{}: {e}", path.display())),
        };
        Baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Parses the JSON baseline document (schema 1 or 2).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let schema = doc.get("schema").and_then(Json::as_u64).ok_or("missing schema number")?;
        if !(1..=2).contains(&schema) {
            return Err(format!("unsupported baseline schema {schema}"));
        }
        let mut entries = Vec::new();
        for section in [Section::Src, Section::Test] {
            let key = section.key();
            let rows = match doc.get(key).and_then(Json::as_array) {
                Some(rows) => rows,
                None if section == Section::Test => continue, // absent in schema 1
                None => return Err(format!("missing {key} array")),
            };
            for (i, row) in rows.iter().enumerate() {
                let field = |k: &str| {
                    row.get(k)
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .ok_or(format!("{key}[{i}]/{k} not a string"))
                };
                entries.push(BaselineEntry {
                    rule: field("rule")?,
                    file: field("file")?,
                    count: row
                        .get("count")
                        .and_then(Json::as_u64)
                        .ok_or(format!("{key}[{i}]/count not a u64"))?,
                    reason: field("reason")?,
                });
            }
        }
        entries.sort_by(|a, b| (&a.rule, &a.file).cmp(&(&b.rule, &b.file)));
        Ok(Baseline { entries })
    }

    /// Serializes the baseline (schema 2, pretty-printed: one entry per
    /// stanza so paydown diffs read naturally in review; `src` and
    /// `tests`/`benches` debt in separate sections).
    pub fn render(&self) -> String {
        let mut out = String::from("{\n  \"schema\": 2");
        for section in [Section::Src, Section::Test] {
            let rows: Vec<&BaselineEntry> =
                self.entries.iter().filter(|e| Section::of(&e.file) == section).collect();
            let _ = write!(out, ",\n  \"{}\": [\n", section.key());
            let n = rows.len();
            for (i, e) in rows.iter().enumerate() {
                let row = Json::Obj(vec![
                    ("rule".into(), Json::Str(e.rule.clone())),
                    ("file".into(), Json::Str(e.file.clone())),
                    ("count".into(), Json::Num(e.count as f64)),
                    ("reason".into(), Json::Str(e.reason.clone())),
                ]);
                let _ = writeln!(out, "    {row}{}", if i + 1 < n { "," } else { "" });
            }
            out.push_str("  ]");
        }
        out.push_str("\n}\n");
        out
    }

    /// Tolerated count for `(rule, file)`.
    fn allowance(&self, rule: &str, file: &str) -> u64 {
        self.entries
            .iter()
            .find(|e| e.rule == rule && e.file == file)
            .map_or(0, |e| e.count)
    }

    /// Applies the ratchet: marks each diagnostic baselined or new, and
    /// reports growth, unrecorded shrinkage and placeholder reasons.
    pub fn ratchet(&self, diags: &mut [Diagnostic]) -> RatchetOutcome {
        let mut outcome = RatchetOutcome::default();
        let current = count_by_bucket(diags);
        for d in diags.iter_mut() {
            let allowed = self.allowance(d.rule, &d.file);
            let cur = current.get(&(d.rule.to_string(), d.file.clone())).copied().unwrap_or(0);
            d.status = if cur <= allowed { DiagStatus::Baselined } else { DiagStatus::New };
        }
        for ((rule, file), cur) in &current {
            let allowed = self.allowance(rule, file);
            if *cur > allowed {
                outcome.failures.push(format!(
                    "{rule} {file}: {cur} violation(s), baseline allows {allowed} — fix the new \
                     one(s); never grow the baseline for new code"
                ));
            }
        }
        for e in &self.entries {
            let cur = current.get(&(e.rule.clone(), e.file.clone())).copied().unwrap_or(0);
            if cur < e.count {
                outcome.stale += 1;
                outcome.failures.push(format!(
                    "{} {}: baseline records {} but only {cur} remain — debt was paid, lock it \
                     in with `--update-baseline`",
                    e.rule, e.file, e.count
                ));
            }
            if e.reason.trim().is_empty() || e.reason.starts_with("TODO") {
                outcome.failures.push(format!(
                    "{} {}: baseline entry has no reason — document why this debt is \
                     grandfathered",
                    e.rule, e.file
                ));
            }
        }
        outcome
    }

    /// Rebuilds the baseline from the current diagnostics, keeping the
    /// reasons of surviving entries and flagging new ones with
    /// [`TODO_REASON`] for a human to fill in.
    pub fn updated(&self, diags: &[Diagnostic]) -> Baseline {
        let current = count_by_bucket(diags);
        let mut entries: Vec<BaselineEntry> = current
            .into_iter()
            .map(|((rule, file), count)| {
                let reason = self
                    .entries
                    .iter()
                    .find(|e| e.rule == rule && e.file == file)
                    .map_or_else(|| TODO_REASON.to_string(), |e| e.reason.clone());
                BaselineEntry { rule, file, count, reason }
            })
            .collect();
        entries.sort_by(|a, b| (&a.rule, &a.file).cmp(&(&b.rule, &b.file)));
        Baseline { entries }
    }
}

fn count_by_bucket(diags: &[Diagnostic]) -> BTreeMap<(String, String), u64> {
    let mut counts = BTreeMap::new();
    for d in diags {
        *counts.entry((d.rule.to_string(), d.file.clone())).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, file: &str) -> Diagnostic {
        Diagnostic::new(rule, file, 1, 1, "m".into())
    }

    #[test]
    fn round_trips() {
        let b = Baseline {
            entries: vec![BaselineEntry {
                rule: "L1".into(),
                file: "crates/core/src/a.rs".into(),
                count: 3,
                reason: "construction-bounded indexing".into(),
            }],
        };
        assert_eq!(Baseline::parse(&b.render()).expect("parses"), b);
    }

    #[test]
    fn ratchet_passes_at_exact_budget() {
        let b = Baseline {
            entries: vec![BaselineEntry {
                rule: "L1".into(),
                file: "f.rs".into(),
                count: 2,
                reason: "ok".into(),
            }],
        };
        let mut diags = vec![diag("L1", "f.rs"), diag("L1", "f.rs")];
        let out = b.ratchet(&mut diags);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert!(diags.iter().all(|d| d.status == DiagStatus::Baselined));
    }

    #[test]
    fn ratchet_fails_on_growth_and_new_files() {
        let b = Baseline {
            entries: vec![BaselineEntry {
                rule: "L1".into(),
                file: "f.rs".into(),
                count: 1,
                reason: "ok".into(),
            }],
        };
        let mut diags = vec![diag("L1", "f.rs"), diag("L1", "f.rs"), diag("L2", "g.rs")];
        let out = b.ratchet(&mut diags);
        assert_eq!(out.failures.len(), 2);
        assert!(diags.iter().all(|d| d.status == DiagStatus::New));
    }

    #[test]
    fn ratchet_fails_on_stale_debt_and_todo_reasons() {
        let b = Baseline {
            entries: vec![
                BaselineEntry {
                    rule: "L1".into(),
                    file: "f.rs".into(),
                    count: 5,
                    reason: "ok".into(),
                },
                BaselineEntry {
                    rule: "L3".into(),
                    file: "g.rs".into(),
                    count: 1,
                    reason: TODO_REASON.into(),
                },
            ],
        };
        let mut diags = vec![diag("L1", "f.rs"), diag("L3", "g.rs")];
        let out = b.ratchet(&mut diags);
        assert_eq!(out.stale, 1);
        assert_eq!(out.failures.len(), 2, "{:?}", out.failures);
    }

    #[test]
    fn update_keeps_reasons_and_shrinks() {
        let b = Baseline {
            entries: vec![BaselineEntry {
                rule: "L1".into(),
                file: "f.rs".into(),
                count: 9,
                reason: "kept".into(),
            }],
        };
        let updated = b.updated(&[diag("L1", "f.rs"), diag("L5", "h.rs")]);
        assert_eq!(updated.entries.len(), 2);
        assert_eq!(updated.entries[0].count, 1);
        assert_eq!(updated.entries[0].reason, "kept");
        assert_eq!(updated.entries[1].reason, TODO_REASON);
    }

    #[test]
    fn sections_split_and_round_trip() {
        assert_eq!(Section::of("crates/serve/src/daemon.rs"), Section::Src);
        assert_eq!(Section::of("crates/serve/tests/conformance.rs"), Section::Test);
        assert_eq!(Section::of("crates/bench/benches/soak.rs"), Section::Test);
        let b = Baseline {
            entries: vec![
                BaselineEntry {
                    rule: "L1".into(),
                    file: "crates/core/src/a.rs".into(),
                    count: 3,
                    reason: "src debt".into(),
                },
                BaselineEntry {
                    rule: "L7".into(),
                    file: "crates/serve/tests/t.rs".into(),
                    count: 1,
                    reason: "test debt".into(),
                },
            ],
        };
        let text = b.render();
        assert!(text.contains("\"schema\": 2"));
        assert!(text.contains("\"test_entries\""));
        let src_part = text.split("test_entries").next().expect("split");
        assert!(!src_part.contains("tests/t.rs"), "test debt stays out of the src section");
        assert_eq!(Baseline::parse(&text).expect("parses"), b);
    }

    #[test]
    fn schema_one_documents_still_parse() {
        let text = "{\"schema\":1,\"entries\":[{\"rule\":\"L1\",\"file\":\"f.rs\",\"count\":2,\"reason\":\"r\"}]}";
        let b = Baseline::parse(text).expect("schema 1 parses");
        assert_eq!(b.entries.len(), 1);
        assert_eq!(b.entries[0].count, 2);
        assert!(Baseline::parse("{\"schema\":3,\"entries\":[]}").is_err());
    }

    #[test]
    fn missing_file_is_empty() {
        let b = Baseline::load(Path::new("/nonexistent/lint_baseline.json")).expect("empty");
        assert!(b.entries.is_empty());
    }
}
