//! Minimum vertex cover.
//!
//! Locally 2-approximable in all three models (paper §1.4); the PO
//! algorithm lives in `locap-algos`. This module provides the problem
//! definition, a radius-1 local verifier, an exact branch-and-bound solver
//! and a greedy baseline.

use locap_graph::{Graph, NodeId};

use crate::{Goal, VertexSet};

/// Optimisation direction.
pub const GOAL: Goal = Goal::Minimize;

/// Whether `x` covers every edge of `g`.
pub fn feasible(g: &Graph, x: &VertexSet) -> bool {
    g.edges().all(|e| x.contains(&e.u) || x.contains(&e.v))
}

/// Radius-1 local verifier: node `v` accepts iff all its incident edges are
/// covered. All nodes accept ⟺ [`feasible`] (PO-checkability witness:
/// the check uses only the ball `B(v, 1)` and the solution bits on it).
pub fn local_check(g: &Graph, x: &VertexSet, v: NodeId) -> bool {
    x.contains(&v) || g.neighbors(v).iter().all(|u| x.contains(u))
}

/// Greedy baseline: repeatedly add a vertex covering the most uncovered
/// edges.
pub fn greedy(g: &Graph) -> VertexSet {
    let mut covered = vec![false; g.edge_count()];
    let edges = g.edge_vec();
    let mut x = VertexSet::new();
    loop {
        let mut best: Option<(usize, NodeId)> = None;
        for v in g.nodes() {
            if x.contains(&v) {
                continue;
            }
            let gain =
                edges.iter().enumerate().filter(|(i, e)| !covered[*i] && e.touches(v)).count();
            if gain > 0 && best.is_none_or(|(b, _)| gain > b) {
                best = Some((gain, v));
            }
        }
        match best {
            None => break,
            Some((_, v)) => {
                x.insert(v);
                for (i, e) in edges.iter().enumerate() {
                    if e.touches(v) {
                        covered[i] = true;
                    }
                }
            }
        }
    }
    x
}

/// Exact minimum vertex cover by branch and bound on uncovered edges.
///
/// # Panics
///
/// Panics if `g` has more than 128 nodes.
pub fn solve_exact(g: &Graph) -> VertexSet {
    assert!(g.node_count() <= 128, "exact solver supports at most 128 nodes");
    let edges = g.edge_vec();
    let mut best: Vec<NodeId> = greedy(g).into_iter().collect();
    let mut current: Vec<NodeId> = Vec::new();

    fn covered(mask: u128, e: &locap_graph::Edge) -> bool {
        mask & (1 << e.u) != 0 || mask & (1 << e.v) != 0
    }

    fn rec(
        edges: &[locap_graph::Edge],
        mask: u128,
        current: &mut Vec<NodeId>,
        best: &mut Vec<NodeId>,
    ) {
        if current.len() >= best.len() {
            return;
        }
        match edges.iter().find(|e| !covered(mask, e)) {
            None => {
                *best = current.clone();
            }
            Some(e) => {
                for v in [e.u, e.v] {
                    current.push(v);
                    rec(edges, mask | (1 << v), current, best);
                    current.pop();
                }
            }
        }
    }

    rec(&edges, 0, &mut current, &mut best);
    best.into_iter().collect()
}

/// The exact optimum value τ(G).
pub fn opt_value(g: &Graph) -> usize {
    solve_exact(g).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::suite;
    use locap_graph::gen;

    #[test]
    fn known_optima() {
        assert_eq!(opt_value(&gen::cycle(5)), 3);
        assert_eq!(opt_value(&gen::cycle(6)), 3);
        assert_eq!(opt_value(&gen::path(4)), 2); // wait: P4 edges 0-1,1-2,2-3 -> {1,2}
        assert_eq!(opt_value(&gen::complete(4)), 3);
        assert_eq!(opt_value(&gen::complete_bipartite(2, 3)), 2);
        assert_eq!(opt_value(&gen::star(6)), 1);
        assert_eq!(opt_value(&gen::petersen()), 6);
    }

    #[test]
    fn exact_is_feasible_and_greedy_no_better() {
        for (name, g) in suite() {
            let opt = solve_exact(&g);
            assert!(feasible(&g, &opt), "{name}");
            let gr = greedy(&g);
            assert!(feasible(&g, &gr), "{name}");
            assert!(gr.len() >= opt.len(), "{name}");
        }
    }

    #[test]
    fn local_check_conjunction_is_feasibility() {
        for (name, g) in suite() {
            // exact solution: all accept
            let opt = solve_exact(&g);
            assert!(g.nodes().all(|v| local_check(&g, &opt, v)), "{name}");
            // empty solution on a graph with edges: some node rejects
            if g.edge_count() > 0 {
                let empty = VertexSet::new();
                assert!(!feasible(&g, &empty));
                assert!(g.nodes().any(|v| !local_check(&g, &empty, v)), "{name}");
            }
        }
    }

    #[test]
    fn local_check_matches_feasible_on_random_subsets() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        for (name, g) in suite() {
            for _ in 0..30 {
                let x: VertexSet = g.nodes().filter(|_| rng.gen_bool(0.4)).collect();
                let all_accept = g.nodes().all(|v| local_check(&g, &x, v));
                assert_eq!(all_accept, feasible(&g, &x), "{name}");
            }
        }
    }

    #[test]
    fn infeasible_detected() {
        let g = gen::cycle(4);
        let x: VertexSet = [0].into_iter().collect();
        assert!(!feasible(&g, &x));
        assert!(!local_check(&g, &x, 2));
    }
}
