//! Protocol-conformance suite for `locapd`: an in-process daemon over a
//! real TCP socket, driven through the full request matrix —
//!
//! * every pipeline × a valid request (all seven answer `ok: true`);
//! * every malformed-frame class (bad JSON, wrong shape, bad ids, bad
//!   budgets, unknown pipelines/ops) × a typed error response, with the
//!   daemon provably alive afterwards;
//! * oversized and truncated-budget requests;
//! * ops (`ping`, `stats`, `shutdown`, shutdown disabled);
//! * provenance sidecars for artifact-producing requests;
//! * a deterministic load test (8 clients × 25 pipelined requests, every
//!   response matched to its request exactly once) and a worker-pool
//!   saturation test (typed `protocol/overloaded`, nothing lost).

mod common;

use common::{err_kind, expect_err, expect_ok, Client, TestDaemon, VALID_REQUESTS};
use locap_obs::json::Json;
use locap_serve::daemon::DaemonConfig;

#[test]
fn every_pipeline_serves_a_valid_request() {
    let daemon = TestDaemon::start(DaemonConfig::default());
    let mut client = Client::connect(daemon.addr());
    for (pipeline, request) in VALID_REQUESTS {
        let resp = client.roundtrip(request);
        let result = expect_ok(&resp);
        assert_eq!(
            resp.get("pipeline").and_then(Json::as_str),
            Some(pipeline),
            "response names its pipeline: {resp}"
        );
        assert!(
            matches!(result, Json::Obj(fields) if !fields.is_empty()),
            "{pipeline} returned an empty result: {resp}"
        );
        assert!(
            resp.get("elapsed_ms").and_then(Json::as_u64).is_some(),
            "response carries elapsed_ms: {resp}"
        );
    }
    daemon.stop();
}

#[test]
fn responses_echo_the_request_id_verbatim() {
    let daemon = TestDaemon::start(DaemonConfig::default());
    let mut client = Client::connect(daemon.addr());
    for id in [r#""string-id""#, "42", "-7", "3.5", "true"] {
        let resp = client.roundtrip(&format!(
            r#"{{"id":{id},"pipeline":"census","params":{{"family":"directed-cycle","n":12}}}}"#
        ));
        let expected = Json::parse(id).expect("test id parses");
        assert_eq!(resp.get("id").cloned(), Some(expected), "id echo for {id}: {resp}");
    }
    daemon.stop();
}

/// Every malformed-frame class is answered with its documented typed
/// error kind — and the connection keeps serving afterwards.
#[test]
fn malformed_requests_get_typed_errors_and_daemon_survives() {
    let cases: &[(&str, &str)] = &[
        ("not json at all", "protocol/bad_json"),
        (r#"{"id":1,"pipeline":"census""#, "protocol/bad_json"),
        (r#"[1,2,3]"#, "protocol/not_an_object"),
        (r#""just a string""#, "protocol/not_an_object"),
        (r#"{"pipeline":"census"}"#, "protocol/missing_id"),
        (r#"{"id":null,"pipeline":"census"}"#, "protocol/missing_id"),
        (r#"{"id":[1],"pipeline":"census"}"#, "protocol/bad_id"),
        (r#"{"id":{"a":1},"pipeline":"census"}"#, "protocol/bad_id"),
        (r#"{"id":1}"#, "protocol/missing_pipeline"),
        (r#"{"id":1,"pipeline":7}"#, "protocol/missing_pipeline"),
        (r#"{"op":"reboot"}"#, "protocol/unknown_op"),
        (r#"{"id":1,"pipeline":"census","budget":7}"#, "protocol/bad_budget"),
        (r#"{"id":1,"pipeline":"census","budget":{"deadline_ms":"soon"}}"#, "protocol/bad_budget"),
        (r#"{"id":1,"pipeline":"census","budget":{"fuel":9}}"#, "protocol/bad_budget"),
        (r#"{"id":1,"pipeline":"warp"}"#, "request/unknown_pipeline"),
        (r#"{"id":1,"pipeline":"census"}"#, "request/missing_param"),
        (
            r#"{"id":1,"pipeline":"census","params":{"family":"directed-cycle","n":2}}"#,
            "request/bad_param",
        ),
        (r#"{"id":1,"pipeline":"eds-lower","params":{"n":99999999}}"#, "request/bad_param"),
    ];
    let daemon = TestDaemon::start(DaemonConfig::default());
    let mut client = Client::connect(daemon.addr());
    for (frame, kind) in cases {
        let resp = client.roundtrip(frame);
        expect_err(&resp, kind);
    }
    // The same connection still serves a valid request.
    let resp = client.roundtrip(VALID_REQUESTS[6].1);
    expect_ok(&resp);
    daemon.stop();
}

#[test]
fn oversized_frame_is_rejected_in_protocol_and_connection_survives() {
    let config = DaemonConfig { max_frame_bytes: 256, ..DaemonConfig::default() };
    let daemon = TestDaemon::start(config);
    let mut client = Client::connect(daemon.addr());
    let huge = format!(r#"{{"id":1,"pipeline":"census","pad":"{}"}}"#, "x".repeat(512));
    let resp = client.roundtrip(&huge);
    expect_err(&resp, "protocol/frame_too_large");
    assert_eq!(resp.get("id").cloned(), Some(Json::Null), "oversized frames lose their id");
    // Resynchronised: the next (normal-sized) frame is served.
    let resp = client.roundtrip(VALID_REQUESTS[6].1);
    expect_ok(&resp);
    daemon.stop();
}

#[test]
fn empty_frames_are_keepalives() {
    let daemon = TestDaemon::start(DaemonConfig::default());
    let mut client = Client::connect(daemon.addr());
    client.send_raw(b"\n\n\n");
    let resp = client.roundtrip(VALID_REQUESTS[6].1);
    expect_ok(&resp);
    daemon.stop();
}

/// A zero deadline expires before any pipeline does work: all seven
/// answer with `truncated/deadline`, deterministically.
#[test]
fn zero_deadline_truncates_every_pipeline() {
    let daemon = TestDaemon::start(DaemonConfig::default());
    let mut client = Client::connect(daemon.addr());
    for (pipeline, request) in VALID_REQUESTS {
        let Some(rest) = request.strip_suffix('}') else {
            panic!("request literal must end with }}");
        };
        let resp = client.roundtrip(&format!(r#"{rest},"budget":{{"deadline_ms":0}}}}"#));
        expect_err(&resp, "truncated/deadline");
        let message = resp
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap_or_default();
        assert!(
            message.contains(pipeline),
            "truncation message names the stage {pipeline}: {resp}"
        );
    }
    daemon.stop();
}

#[test]
fn max_rounds_budget_is_honoured() {
    let daemon = TestDaemon::start(DaemonConfig::default());
    let mut client = Client::connect(daemon.addr());
    // radius 3 census needs 3 rounds; a 1-round budget truncates it.
    let resp = client.roundtrip(
        r#"{"id":1,"pipeline":"census","params":{"family":"directed-cycle","n":12,"radius":3},"budget":{"max_rounds":1}}"#,
    );
    expect_err(&resp, "truncated/round_limit");
    daemon.stop();
}

#[test]
fn ping_and_stats_ops_answer_inline() {
    let daemon = TestDaemon::start(DaemonConfig::default());
    let mut client = Client::connect(daemon.addr());
    let pong = client.roundtrip(r#"{"op":"ping","id":"p1"}"#);
    expect_ok(&pong);
    assert_eq!(pong.get("id").and_then(Json::as_str), Some("p1"));

    let _ = client.roundtrip(VALID_REQUESTS[0].1);
    let stats = client.roundtrip(r#"{"op":"stats"}"#);
    let result = expect_ok(&stats);
    for field in [
        "requests",
        "responses_ok",
        "responses_err",
        "undeliverable",
        "connections",
        "queue_depth",
        "queue_capacity",
        "workers",
    ] {
        assert!(
            result.get(field).and_then(Json::as_u64).is_some(),
            "stats carries {field}: {stats}"
        );
    }
    assert!(
        result.get("requests").and_then(Json::as_u64).unwrap_or(0) >= 2,
        "stats counted this connection's requests: {stats}"
    );
    assert!(
        result.get("telemetry_interval_ms").and_then(Json::as_u64).is_some(),
        "stats carries telemetry_interval_ms: {stats}"
    );
    // stats now embeds the full registry snapshot (counters, gauges,
    // spans, latencies), reusing the telemetry capture machinery
    let registry = result.get("registry").expect("stats carries the registry snapshot");
    let state = locap_obs::telemetry::TelemetryState::from_json(registry)
        .unwrap_or_else(|e| panic!("stats registry parses as a telemetry state ({e}): {stats}"));
    assert!(
        state.counters.get("serve/requests").copied().unwrap_or(0) >= 2,
        "registry snapshot carries serve/requests: {stats}"
    );
    assert!(
        state.latencies.keys().any(|k| k.starts_with("serve/request/")),
        "registry snapshot carries per-phase request latencies: {stats}"
    );
    daemon.stop();
}

#[test]
fn shutdown_op_responds_then_stops_the_daemon() {
    let daemon = TestDaemon::start(DaemonConfig::default());
    let mut client = Client::connect(daemon.addr());
    let resp = client.roundtrip(r#"{"op":"shutdown","id":"bye"}"#);
    expect_ok(&resp);
    // run() returns; stop() would hang forever if it did not.
    daemon.stop();
}

#[test]
fn shutdown_op_can_be_disabled() {
    let config = DaemonConfig { allow_shutdown: false, ..DaemonConfig::default() };
    let daemon = TestDaemon::start(config);
    let mut client = Client::connect(daemon.addr());
    let resp = client.roundtrip(r#"{"op":"shutdown"}"#);
    expect_err(&resp, "protocol/shutdown_disabled");
    // Still serving.
    let resp = client.roundtrip(VALID_REQUESTS[6].1);
    expect_ok(&resp);
    daemon.stop();
}

#[test]
fn artifact_requests_write_provenance_sidecars() {
    let dir = std::env::temp_dir().join(format!("locap-conformance-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    let config = DaemonConfig { artifact_dir: Some(dir.clone()), ..DaemonConfig::default() };
    let daemon = TestDaemon::start(config);
    let mut client = Client::connect(daemon.addr());
    let resp = client.roundtrip(
        r#"{"id":"prov-1","pipeline":"census","params":{"family":"directed-cycle","n":12}}"#,
    );
    expect_ok(&resp);
    daemon.stop();

    let artifact = dir.join("census-prov-1.json");
    let sidecar = dir.join("census-prov-1.json.provenance.json");
    let artifact_doc =
        Json::parse(std::fs::read_to_string(&artifact).expect("artifact written").trim())
            .expect("artifact is JSON");
    assert_eq!(artifact_doc.get("nodes").and_then(Json::as_u64), Some(12));
    let doc = Json::parse(std::fs::read_to_string(&sidecar).expect("sidecar written").trim())
        .expect("sidecar is JSON");
    assert_eq!(doc.get("schema").and_then(Json::as_u64), Some(locap_serve::provenance::SCHEMA));
    assert_eq!(doc.get("tool").and_then(Json::as_str), Some("locapd"));
    assert_eq!(doc.get("pipeline").and_then(Json::as_str), Some("census"));
    assert_eq!(
        doc.get("params").and_then(|p| p.get("n")).and_then(Json::as_u64),
        Some(12),
        "sidecar records the effective params: {doc}"
    );
    assert!(doc.get("created_unix_ms").and_then(Json::as_u64).is_some());
    assert!(
        matches!(doc.get("counters"), Some(Json::Obj(_))),
        "sidecar carries an obs-counter delta: {doc}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The deterministic load test: 8 concurrent clients, 25 pipelined
/// requests each, every response matched to its request id exactly
/// once — nothing lost, nothing duplicated. Doubles as the correctness
/// face of the `serve/load_8x25` bench_gate scenario.
#[test]
fn concurrent_load_loses_and_duplicates_nothing() {
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 25;
    let config =
        DaemonConfig { workers: 2, queue_depth: CLIENTS * PER_CLIENT, ..DaemonConfig::default() };
    let daemon = TestDaemon::start(config);
    let addr = daemon.addr();
    let threads: Vec<_> = (0..CLIENTS)
        .map(|client| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                for i in 0..PER_CLIENT {
                    c.send_line(&format!(
                        r#"{{"id":{},"pipeline":"census","params":{{"family":"directed-cycle","n":12}}}}"#,
                        client * PER_CLIENT + i
                    ));
                }
                let mut seen = [false; PER_CLIENT];
                for _ in 0..PER_CLIENT {
                    let resp = c.recv();
                    expect_ok(&resp);
                    let id = resp
                        .get("id")
                        .and_then(Json::as_u64)
                        .unwrap_or_else(|| panic!("numeric id expected: {resp}"))
                        as usize;
                    let slot = id.checked_sub(client * PER_CLIENT).expect("id in client range");
                    assert!(slot < PER_CLIENT, "id {id} outside client {client}'s range");
                    assert!(!seen[slot], "duplicate response for id {id}");
                    seen[slot] = true;
                }
                assert!(seen.iter().all(|&s| s), "client {client} lost responses");
            })
        })
        .collect();
    for t in threads {
        t.join().expect("load client");
    }
    daemon.stop();
}

/// Worker-pool saturation: one worker held busy by a slow request and a
/// depth-1 queue force `protocol/overloaded` — but every request still
/// gets exactly one response and the daemon keeps serving.
#[test]
fn saturation_answers_with_typed_overloaded() {
    let config = DaemonConfig { workers: 1, queue_depth: 1, ..DaemonConfig::default() };
    let daemon = TestDaemon::start(config);
    let mut client = Client::connect(daemon.addr());
    // ~0.5 s of real work to hold the single worker.
    client.send_line(
        r#"{"id":"slow","pipeline":"transfer","params":{"algo":"vc-non-min","cycle":9,"m":30}}"#,
    );
    const BURST: usize = 30;
    for i in 0..BURST {
        client.send_line(&format!(
            r#"{{"id":{i},"pipeline":"census","params":{{"family":"directed-cycle","n":12}}}}"#
        ));
    }
    let mut ok = 0usize;
    let mut overloaded = 0usize;
    let mut slow_answered = false;
    for _ in 0..BURST + 1 {
        let resp = client.recv();
        if resp.get("id").and_then(Json::as_str) == Some("slow") {
            expect_ok(&resp);
            slow_answered = true;
        } else if err_kind(&resp) == Some("protocol/overloaded") {
            let message = resp
                .get("error")
                .and_then(|e| e.get("message"))
                .and_then(Json::as_str)
                .unwrap_or_default();
            assert!(
                message.contains("queue full"),
                "overloaded response explains the queue state: {resp}"
            );
            overloaded += 1;
        } else {
            expect_ok(&resp);
            ok += 1;
        }
    }
    assert!(slow_answered, "the slow request itself was answered");
    assert!(overloaded > 0, "a depth-1 queue under a 30-request burst must overflow");
    assert_eq!(ok + overloaded, BURST, "every burst request answered exactly once");
    // Recovered: the next request succeeds.
    let resp = client.roundtrip(VALID_REQUESTS[6].1);
    expect_ok(&resp);
    daemon.stop();
}

/// All on-disk store entry files under `root` (recursive).
fn store_entries(root: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("read store dir") {
            let path = entry.expect("store dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else {
                files.push(path);
            }
        }
    }
    files
}

/// The `result.store` object of a `stats` roundtrip.
fn store_stats(client: &mut Client) -> Json {
    let resp = client.roundtrip(r#"{"op":"stats","id":"store-stats"}"#);
    expect_ok(&resp)
        .get("store")
        .unwrap_or_else(|| panic!("stats carries store: {resp}"))
        .clone()
}

/// The tentpole acceptance path: a repeat request answers from the
/// store (`store/warm_hit` moves), and corrupting every store entry on
/// disk degrades to a recompute — same result, `store/corrupt` moves,
/// no error, no panic — after which the repaired store serves warm
/// again.
#[test]
fn store_dir_serves_repeats_warm_and_degrades_on_corruption() {
    let dir = std::env::temp_dir().join(format!("locap-conformance-store-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let config = DaemonConfig { store_dir: Some(dir.clone()), ..DaemonConfig::default() };
    let daemon = TestDaemon::start(config);
    let mut client = Client::connect(daemon.addr());
    let request = VALID_REQUESTS[6].1; // census

    let cold = client.roundtrip(request);
    let cold_result = expect_ok(&cold).clone();
    let after_cold = store_stats(&mut client);
    assert!(
        after_cold.get("write").and_then(Json::as_u64).unwrap_or(0) >= 1,
        "cold run wrote store entries: {after_cold}"
    );

    let warm = client.roundtrip(request);
    assert_eq!(expect_ok(&warm), &cold_result, "warm result identical to cold");
    let after_warm = store_stats(&mut client);
    let warm_hits = after_warm.get("warm_hit").and_then(Json::as_u64).unwrap_or(0);
    assert!(warm_hits >= 1, "repeat request served from the store: {after_warm}");
    assert!(
        after_warm.get("hit_rate_pct").and_then(Json::as_u64).is_some(),
        "stats exposes the hit-rate gauge: {after_warm}"
    );

    // Flip one byte in the middle of every entry on disk.
    let entries = store_entries(&dir);
    assert!(!entries.is_empty(), "store holds entries after a cold run");
    for path in &entries {
        let mut bytes = std::fs::read(path).expect("read store entry");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(path, &bytes).expect("rewrite store entry");
    }
    let recomputed = client.roundtrip(request);
    assert_eq!(expect_ok(&recomputed), &cold_result, "corruption degrades to a recompute");
    let after_corrupt = store_stats(&mut client);
    assert!(
        after_corrupt.get("corrupt").and_then(Json::as_u64).unwrap_or(0) >= 1,
        "damaged entries counted as typed misses: {after_corrupt}"
    );

    // The recompute repaired the entries: warm again.
    let repaired = client.roundtrip(request);
    assert_eq!(expect_ok(&repaired), &cold_result);
    let after_repair = store_stats(&mut client);
    assert!(
        after_repair.get("warm_hit").and_then(Json::as_u64).unwrap_or(0) > warm_hits,
        "repaired store serves warm again: {after_repair}"
    );
    daemon.stop();
    std::fs::remove_dir_all(&dir).ok();
}

/// An artifact/sidecar write failure must not hide behind an
/// unqualified `ok` response: the response stays ok (the run
/// succeeded) but carries `artifact_error`, so `replay --expect-ok`
/// clients detect the missing artifact.
#[test]
fn failed_artifact_write_is_flagged_in_the_ok_response() {
    let base = std::env::temp_dir()
        .join(format!("locap-conformance-artifact-fail-{}", std::process::id()));
    std::fs::create_dir_all(&base).expect("create scratch dir");
    // The artifact dir's parent is a regular file, so every artifact
    // write fails with NotADirectory — even when running as root
    // (permission bits would not).
    let blocker = base.join("blocker");
    std::fs::write(&blocker, b"not a directory\n").expect("create blocker file");
    let config =
        DaemonConfig { artifact_dir: Some(blocker.join("artifacts")), ..DaemonConfig::default() };
    let daemon = TestDaemon::start(config);
    let mut client = Client::connect(daemon.addr());

    let resp = client.roundtrip(VALID_REQUESTS[6].1);
    expect_ok(&resp);
    let message = resp
        .get("artifact_error")
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("ok response flags the failed artifact write: {resp}"));
    assert!(
        message.contains("failed to write artifact"),
        "artifact_error explains the failure: {resp}"
    );

    // A daemon with a writable artifact dir stays unqualified-ok.
    daemon.stop();
    let ok_dir = base.join("artifacts-ok");
    std::fs::create_dir_all(&ok_dir).expect("create artifact dir");
    let config = DaemonConfig { artifact_dir: Some(ok_dir), ..DaemonConfig::default() };
    let daemon = TestDaemon::start(config);
    let mut client = Client::connect(daemon.addr());
    let resp = client.roundtrip(VALID_REQUESTS[6].1);
    expect_ok(&resp);
    assert!(resp.get("artifact_error").is_none(), "no spurious artifact_error: {resp}");
    daemon.stop();
    std::fs::remove_dir_all(&base).ok();
}
