//! Fault injection for `locapd`: torn connections, expired deadlines
//! and a saturated worker pool must each resolve into a clean typed
//! response (or a cancelled job) **and** the matching observability
//! counters — the daemon itself never dies.
//!
//! Counter assertions are delta-based (`snapshot` before, poll after)
//! and use `>=`, because the obs registry is process-global and tests
//! in this binary run concurrently.

mod common;

use std::time::{Duration, Instant};

use common::{expect_err, expect_ok, Client, TestDaemon, VALID_REQUESTS};
use locap_obs as obs;
use locap_serve::daemon::DaemonConfig;

/// A request holding a worker for roughly half a second.
const SLOW_REQUEST: &str =
    r#"{"id":"slow","pipeline":"transfer","params":{"algo":"vc-non-min","cycle":9,"m":30}}"#;

/// Polls until `counter` has grown by at least `by` over `base`, or
/// fails after 10 s. Returns the observed delta.
#[track_caller]
fn await_counter_delta(base: &obs::Snapshot, counter: &str, by: u64) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let delta = obs::snapshot().delta(base).counters.get(counter).copied().unwrap_or(0);
        if delta >= by {
            return delta;
        }
        assert!(
            Instant::now() < deadline,
            "counter {counter} did not grow by {by} within 10s (delta {delta})"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Tearing the connection down mid-request cancels the in-flight job:
/// the worker observes the cancellation token, publishes
/// `budget/truncated/cancelled`, and the daemon records the disconnect
/// and keeps serving.
#[test]
fn client_disconnect_mid_request_cancels_the_job() {
    let daemon = TestDaemon::start(DaemonConfig { workers: 1, ..DaemonConfig::default() });
    let base = obs::snapshot();
    {
        let mut victim = Client::connect(daemon.addr());
        victim.send_line(SLOW_REQUEST);
        // Give the worker a moment to dequeue, then vanish.
        std::thread::sleep(Duration::from_millis(50));
    } // drop = close both directions
    await_counter_delta(&base, "serve/disconnects", 1);
    await_counter_delta(&base, "budget/truncated/cancelled", 1);
    // The daemon survived and the (single) worker is free again.
    let mut client = Client::connect(daemon.addr());
    let resp = client.roundtrip(VALID_REQUESTS[6].1);
    expect_ok(&resp);
    daemon.stop();
}

/// A half-closed connection (client EOF with the read side open) also
/// cancels in-flight work — and the cancellation response, if the
/// worker races the disconnect, is never mistaken for success.
#[test]
fn client_half_close_mid_request_cancels_the_job() {
    let daemon = TestDaemon::start(DaemonConfig::default());
    let base = obs::snapshot();
    let mut victim = Client::connect(daemon.addr());
    victim.send_line(SLOW_REQUEST);
    std::thread::sleep(Duration::from_millis(50));
    victim.shutdown_write();
    await_counter_delta(&base, "serve/disconnects", 1);
    await_counter_delta(&base, "budget/truncated/cancelled", 1);
    daemon.stop();
}

/// A deadline expiring mid-pipeline yields a typed `truncated/deadline`
/// response on the still-healthy connection, plus the
/// `budget/truncated/deadline` counter.
#[test]
fn deadline_expiry_mid_pipeline_is_a_typed_truncation() {
    let daemon = TestDaemon::start(DaemonConfig::default());
    let base = obs::snapshot();
    let mut client = Client::connect(daemon.addr());
    let Some(rest) = SLOW_REQUEST.strip_suffix('}') else {
        panic!("slow request literal must end with }}");
    };
    let resp = client.roundtrip(&format!(r#"{rest},"budget":{{"deadline_ms":100}}}}"#));
    expect_err(&resp, "truncated/deadline");
    await_counter_delta(&base, "budget/truncated/deadline", 1);
    // Same connection, next request: fully served.
    let resp = client.roundtrip(VALID_REQUESTS[6].1);
    expect_ok(&resp);
    daemon.stop();
}

/// Saturating the pool produces typed `protocol/overloaded` responses
/// and the matching `serve/errors/protocol/overloaded` counter family.
#[test]
fn saturation_publishes_overload_counters() {
    let daemon =
        TestDaemon::start(DaemonConfig { workers: 1, queue_depth: 1, ..DaemonConfig::default() });
    let base = obs::snapshot();
    let mut client = Client::connect(daemon.addr());
    client.send_line(SLOW_REQUEST);
    for i in 0..20 {
        client.send_line(&format!(
            r#"{{"id":{i},"pipeline":"census","params":{{"family":"directed-cycle","n":12}}}}"#
        ));
    }
    let mut overloaded = 0u64;
    for _ in 0..21 {
        let resp = client.recv();
        if common::err_kind(&resp) == Some("protocol/overloaded") {
            overloaded += 1;
        }
    }
    assert!(overloaded > 0, "a depth-1 queue under a 20-request burst must overflow");
    let counted = await_counter_delta(&base, "serve/errors/protocol/overloaded", overloaded);
    assert!(counted >= overloaded, "every overloaded response is counted");
    daemon.stop();
}

/// Request-level rejections are mirrored in the `serve/errors/*`
/// counter family, so operators can see malformed traffic without logs.
#[test]
fn request_rejections_are_counted_by_kind() {
    let daemon = TestDaemon::start(DaemonConfig::default());
    let base = obs::snapshot();
    let mut client = Client::connect(daemon.addr());
    let resp = client
        .roundtrip(r#"{"id":1,"pipeline":"census","params":{"family":"directed-cycle","n":2}}"#);
    expect_err(&resp, "request/bad_param");
    await_counter_delta(&base, "serve/errors/request/bad_param", 1);
    let resp = client.roundtrip("garbage");
    expect_err(&resp, "protocol/bad_json");
    await_counter_delta(&base, "serve/errors/protocol/bad_json", 1);
    daemon.stop();
}
