//! E09 — Theorem 4.1: simulating an OI algorithm by a PO algorithm.
//!
//! For OI algorithms A (order-greedy vertex cover, local-minimum
//! independent set), builds B(W) = A((T*, <*, λ)↾W) and measures
//! Fact 4.2's agreement fraction on homogeneous lifts, plus B's
//! feasibility and approximation ratio on the base graph.

#![forbid(unsafe_code)]

use locap_bench::{cells, hprintln, Table};
use locap_core::homogeneous::construct;
use locap_core::transfer::transfer_vertex;
use locap_graph::canon::OrderedNbhd;
use locap_graph::gen;
use locap_models::OiVertexAlgorithm;
use locap_problems::{independent_set, vertex_cover, Goal};

/// OI vertex cover: join unless the centre is its ball's order-minimum.
#[derive(Clone)]
struct NonMinCover;
impl OiVertexAlgorithm for NonMinCover {
    fn radius(&self) -> usize {
        1
    }
    fn evaluate(&self, t: &OrderedNbhd) -> bool {
        t.root != 0
    }
}

/// OI independent set: join iff the centre is its ball's order-minimum.
#[derive(Clone)]
struct LocalMinIs;
impl OiVertexAlgorithm for LocalMinIs {
    fn radius(&self) -> usize {
        1
    }
    fn evaluate(&self, t: &OrderedNbhd) -> bool {
        t.root == 0
    }
}

fn main() {
    locap_bench::run(
        "e09_oi_to_po",
        "E09",
        "Thm 4.1 — OI → PO simulation with agreement accounting",
        body,
    );
}

fn body() {
    let mut t = Table::new(&[
        "A (OI)",
        "G",
        "m",
        "lift nodes",
        "agreement",
        "α(H)",
        "B(G) size",
        "feasible",
        "ratio",
    ]);

    for (g_name, g) in
        [("directed C12", gen::directed_cycle(12)), ("directed C30", gen::directed_cycle(30))]
    {
        for m in [6u64, 12, 20] {
            let h = construct(1, 1, m).unwrap();

            let (rep, _) = transfer_vertex(
                &g,
                &h,
                NonMinCover,
                Goal::Minimize,
                vertex_cover::feasible,
                vertex_cover::opt_value,
            )
            .unwrap();
            t.row(&cells([
                &"VC: non-minimum",
                &g_name,
                &m,
                &rep.lift_nodes,
                &format!("{:.4}", rep.agreement.to_f64()),
                &format!("{:.4}", h.fraction().to_f64()),
                &rep.b_on_g.len(),
                &rep.feasible,
                &rep.ratio.map(|r| r.to_string()).unwrap_or_else(|| "-".into()),
            ]));

            let (rep, _) = transfer_vertex(
                &g,
                &h,
                LocalMinIs,
                Goal::Maximize,
                independent_set::feasible,
                independent_set::opt_value,
            )
            .unwrap();
            t.row(&cells([
                &"IS: local minimum",
                &g_name,
                &m,
                &rep.lift_nodes,
                &format!("{:.4}", rep.agreement.to_f64()),
                &format!("{:.4}", h.fraction().to_f64()),
                &rep.b_on_g.len(),
                &rep.feasible,
                &rep.ratio.map(|r| r.to_string()).unwrap_or_else(|| "-".into()),
            ]));
        }
    }
    t.print();

    hprintln!("\nReading the table:");
    hprintln!("  • agreement ≥ α(H) everywhere — Fact 4.2;");
    hprintln!("  • B is lift-invariant (checked exactly inside transfer_vertex);");
    hprintln!("  • VC: B selects everything on symmetric cycles (feasible, ratio 2);");
    hprintln!("  • IS: B selects nothing (feasible but ratio undefined/∞) —");
    hprintln!("    the §1.4 claim that no constant-factor PO independent-set");
    hprintln!("    algorithm exists, here *derived* from an OI algorithm via B.");
}
