//! Property tests for the result store: write→read identity over
//! arbitrary JSON documents, and damage handling — any single-byte flip
//! or truncation of an entry file classifies as [`Lookup::Corrupt`] (a
//! typed miss the caller recomputes through), never a panic and never a
//! silently wrong hit.

use std::path::PathBuf;

use locap_obs::json::Json;
use locap_store::{Lookup, StoreHandle, StoreKey};
use proptest::prelude::*;

/// A fresh per-case scratch directory (removed at case end).
fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("locap-store-props-{}-{tag}", std::process::id()))
}

/// Characters exercised in generated strings: escapes, separators, the
/// store's own header delimiters, and multi-byte code points.
const STRING_POOL: &[char] =
    &['a', 'z', '0', '9', ' ', '_', '-', '/', '\\', '"', '\n', '\t', '{', '}', ':', 'µ', '∆'];

/// A short random string over [`STRING_POOL`].
fn random_string(rng: &mut TestRng) -> String {
    let n = rng.next_u64() % 12;
    (0..n)
        .filter_map(|_| STRING_POOL.get(rng.next_u64() as usize % STRING_POOL.len()))
        .collect()
}

/// A random JSON document of bounded depth. Numbers are integers in
/// `±2^52` so the `f64` encoding round-trips exactly.
fn random_json(rng: &mut TestRng, depth: usize) -> Json {
    let variants = if depth == 0 { 4 } else { 6 };
    match rng.next_u64() % variants {
        0 => Json::Null,
        1 => Json::Bool(rng.next_u64() % 2 == 0),
        2 => Json::Num(((rng.next_u64() % (1 << 53)) as i64 - (1 << 52)) as f64),
        3 => Json::Str(random_string(rng)),
        4 => {
            let n = rng.next_u64() % 4;
            Json::Arr((0..n).map(|_| random_json(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.next_u64() % 4;
            Json::Obj(
                (0..n)
                    .map(|i| (format!("k{i}-{}", random_string(rng)), random_json(rng, depth - 1)))
                    .collect(),
            )
        }
    }
}

proptest! {
    /// Whatever document goes in comes back out structurally identical,
    /// and the handle-local stats record exactly the operations made.
    #[test]
    fn write_then_read_is_identity(params in (any::<u64>(), 1usize..4)) {
        let (seed, depth) = params;
        let mut rng = TestRng::from_name(&format!("store-rt-{seed}-{depth}"));
        let dir = scratch(&format!("rt-{seed}-{depth}"));
        let store = StoreHandle::open(&dir).expect("open scratch store");
        let key = StoreKey::of_bytes(&seed.to_le_bytes());
        let doc = random_json(&mut rng, depth);

        prop_assert_eq!(store.lookup("props", &key), Lookup::Miss);
        store.put("props", &key, &doc).expect("write entry");
        prop_assert_eq!(store.lookup("props", &key), Lookup::Hit(doc.clone()));
        // Overwriting with a different document replaces the entry.
        let doc2 = random_json(&mut rng, depth);
        store.put("props", &key, &doc2).expect("overwrite entry");
        prop_assert_eq!(store.get("props", &key), Some(doc2));

        let stats = store.stats();
        prop_assert_eq!(stats.warm_hit, 2);
        prop_assert_eq!(stats.cold_miss, 1);
        prop_assert_eq!(stats.write, 2);
        prop_assert_eq!(stats.corrupt, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Flipping any single byte of an entry file, or truncating it at
    /// any point, yields `Lookup::Corrupt` — counted, and recoverable by
    /// a fresh write. No input panics.
    #[test]
    fn damage_is_a_typed_miss_never_a_panic(params in (any::<u64>(), 1usize..4)) {
        let (seed, depth) = params;
        let mut rng = TestRng::from_name(&format!("store-dmg-{seed}-{depth}"));
        let dir = scratch(&format!("dmg-{seed}-{depth}"));
        let store = StoreHandle::open(&dir).expect("open scratch store");
        let key = StoreKey::of_bytes(&seed.to_le_bytes());
        let doc = random_json(&mut rng, depth);
        store.put("props", &key, &doc).expect("write entry");
        let path = store.entry_path("props", &key);
        let original = std::fs::read(&path).expect("read entry back");

        // Random single-byte flip anywhere in the file (header, body,
        // trailing newline) — guaranteed to change the byte.
        let pos = rng.next_u64() as usize % original.len();
        let mut flipped = original.clone();
        flipped[pos] ^= 1 + (rng.next_u64() % 255) as u8;
        std::fs::write(&path, &flipped).expect("write flipped entry");
        prop_assert_eq!(store.lookup("props", &key), Lookup::Corrupt);

        // Random strict-prefix truncation (including to empty).
        let cut = rng.next_u64() as usize % original.len();
        std::fs::write(&path, &original[..cut]).expect("write truncated entry");
        prop_assert_eq!(store.lookup("props", &key), Lookup::Corrupt);

        prop_assert_eq!(store.stats().corrupt, 2);
        // A fresh put repairs the damaged entry in place.
        store.put("props", &key, &doc).expect("repair entry");
        prop_assert_eq!(store.lookup("props", &key), Lookup::Hit(doc));
        std::fs::remove_dir_all(&dir).ok();
    }
}
