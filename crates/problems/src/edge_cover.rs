//! Minimum edge cover.
//!
//! Locally 2-approximable, and no better, in all three models (paper §1.4).
//! Exact optimum via Gallai's identity ρ(G) = n − ν(G), with an explicit
//! witness built from a maximum matching.

use locap_graph::{Edge, Graph, NodeId};

use crate::{matching, EdgeSet, Goal};

/// Optimisation direction.
pub const GOAL: Goal = Goal::Minimize;

/// Whether every node is incident to some member of `x` (and members are
/// real edges). Graphs with isolated nodes have no edge cover.
pub fn feasible(g: &Graph, x: &EdgeSet) -> bool {
    x.iter().all(|e| g.has_edge(e.u, e.v)) && g.nodes().all(|v| x.iter().any(|e| e.touches(v)))
}

/// Radius-1 local verifier: `v` accepts iff some incident edge is in `x`
/// (and its incident members are real edges).
pub fn local_check(g: &Graph, x: &EdgeSet, v: NodeId) -> bool {
    let mut any = false;
    for e in x.iter().filter(|e| e.touches(v)) {
        if !g.has_edge(e.u, e.v) {
            return false;
        }
        any = true;
    }
    any
}

/// Exact minimum edge cover: extend a maximum matching by one edge per
/// unmatched vertex (Gallai). Returns `None` if the graph has an isolated
/// node (no edge cover exists).
pub fn solve_exact(g: &Graph) -> Option<EdgeSet> {
    if g.nodes().any(|v| g.degree(v) == 0) {
        return None;
    }
    let mut cover = matching::solve_exact(g);
    let mut covered = vec![false; g.node_count()];
    for e in &cover {
        covered[e.u] = true;
        covered[e.v] = true;
    }
    for v in g.nodes() {
        if !covered[v] {
            let u = g.neighbors(v)[0];
            cover.insert(Edge::new(v, u));
            covered[v] = true;
            // u was already covered or becomes covered; either way fine
            covered[u] = true;
        }
    }
    Some(cover)
}

/// The exact optimum value ρ(G) = n − ν(G); `None` for graphs with
/// isolated nodes.
pub fn opt_value(g: &Graph) -> Option<usize> {
    solve_exact(g).map(|c| c.len())
}

/// Greedy baseline: a greedy maximal matching extended by one edge per
/// uncovered vertex (the classical 2-approximation, also how the local
/// algorithm works).
pub fn greedy(g: &Graph) -> Option<EdgeSet> {
    if g.nodes().any(|v| g.degree(v) == 0) {
        return None;
    }
    let mut cover = matching::greedy_maximal(g);
    let mut covered = vec![false; g.node_count()];
    for e in &cover {
        covered[e.u] = true;
        covered[e.v] = true;
    }
    for v in g.nodes() {
        if !covered[v] {
            let u = g.neighbors(v)[0];
            cover.insert(Edge::new(v, u));
            covered[v] = true;
        }
    }
    Some(cover)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::suite;
    use locap_graph::gen;

    #[test]
    fn known_optima_gallai() {
        assert_eq!(opt_value(&gen::cycle(5)), Some(3));
        assert_eq!(opt_value(&gen::cycle(6)), Some(3));
        assert_eq!(opt_value(&gen::path(4)), Some(2));
        assert_eq!(opt_value(&gen::complete(4)), Some(2));
        assert_eq!(opt_value(&gen::star(6)), Some(6));
        assert_eq!(opt_value(&gen::petersen()), Some(5));
        for (name, g) in suite() {
            if let Some(rho) = opt_value(&g) {
                assert_eq!(rho, g.node_count() - matching::opt_value(&g), "{name}: ρ = n − ν");
            }
        }
    }

    #[test]
    fn isolated_nodes_infeasible() {
        let g = Graph::new(3); // no edges at all
        assert_eq!(solve_exact(&g), None);
        assert_eq!(greedy(&g), None);
        assert!(!feasible(&g, &EdgeSet::new()));
    }

    #[test]
    fn solutions_feasible_and_greedy_at_most_twice_opt() {
        for (name, g) in suite() {
            let opt = solve_exact(&g).unwrap();
            assert!(feasible(&g, &opt), "{name}");
            let gr = greedy(&g).unwrap();
            assert!(feasible(&g, &gr), "{name}");
            assert!(gr.len() <= 2 * opt.len(), "{name}: greedy within factor 2");
        }
    }

    #[test]
    fn local_check_matches_feasible_on_random_subsets() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(37);
        for (name, g) in suite() {
            for _ in 0..30 {
                let x: EdgeSet = g.edges().filter(|_| rng.gen_bool(0.5)).collect();
                let all_accept = g.nodes().all(|v| local_check(&g, &x, v));
                assert_eq!(all_accept, feasible(&g, &x), "{name}");
            }
        }
    }
}
