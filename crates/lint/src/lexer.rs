//! A hand-rolled, loss-free Rust lexer.
//!
//! The workspace has no registry access, so the analyzer cannot use
//! `syn` or `proc-macro2`; this lexer covers exactly what the rule
//! engine needs: a flat token stream with byte spans that distinguishes
//! identifiers, punctuation, all literal forms (plain/raw/byte strings,
//! chars vs lifetimes, numbers) and comments (line/doc/nested block).
//! Trivia (whitespace, comments) is kept as tokens, so the spans of the
//! output exactly tile the input — `lexer_props.rs` proptests both that
//! property and panic-freedom on arbitrary byte soup.
//!
//! The lexer is deliberately forgiving: malformed input (unterminated
//! literals, stray bytes) produces tokens, never errors, because the
//! rule engine must degrade gracefully on code that `rustc` itself would
//! reject (fixtures, mid-edit files).

/// Doc-comment flavour of a comment token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Doc {
    /// A plain comment (`//`, `/* */`).
    None,
    /// An outer doc comment (`///`, `/** */`).
    Outer,
    /// An inner doc comment (`//!`, `/*! */`).
    Inner,
}

/// What a token is. String-ish literals collapse into [`TokenKind::Str`]
/// (the rules only care about "is a literal" plus its value).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// A run of ASCII whitespace.
    Whitespace,
    /// A `//`-style comment, excluding the trailing newline.
    LineComment(Doc),
    /// A `/* */` comment (nesting-aware; may be unterminated at EOF).
    BlockComment(Doc),
    /// An identifier or keyword (including raw `r#ident`).
    Ident,
    /// A lifetime such as `'a` or `'_`.
    Lifetime,
    /// A numeric literal (integer or float, any base, with suffix).
    Number,
    /// A string literal: plain, raw, byte or C (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// The `::` path separator.
    ColonColon,
    /// The `..` range operator (`..=`/`...` lex as `..` plus the rest).
    DotDot,
    /// A single ASCII punctuation byte.
    Punct(u8),
    /// Any byte (or UTF-8 scalar) the grammar above does not cover.
    Unknown,
}

/// One token: a kind plus the half-open byte span `[start, end)` into
/// the source it was lexed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Token {
    /// The token's text within its source.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

/// Lexes `src` into a token stream whose spans exactly tile the input.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer { b: src.as_bytes(), pos: 0 }.run()
}

/// The value of a string-literal token: prefix letters, hashes and
/// quotes stripped, common escapes decoded. Returns `None` for tokens
/// that are not [`TokenKind::Str`] or are too malformed to strip.
pub fn str_value(text: &str) -> Option<String> {
    // strip prefix letters (b, r, c, br, cr) and raw-string hashes
    let rest = text.trim_start_matches(|c: char| c.is_ascii_alphabetic());
    let raw = text.len() > rest.len() && text[..text.len() - rest.len()].contains('r');
    let rest = rest.trim_start_matches('#');
    let hashes = "#".repeat(text.len() - text.trim_end_matches('#').len());
    let body = rest.strip_prefix('"')?;
    let body = body.strip_suffix(&format!("\"{hashes}")).unwrap_or(body);
    if raw {
        return Some(body.to_string());
    }
    let mut out = String::with_capacity(body.len());
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('0') => out.push('\0'),
            Some(other) => out.push(other), // \\ \" \' and anything exotic
            None => break,
        }
    }
    Some(out)
}

const fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

const fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

struct Lexer<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        while self.pos < self.b.len() {
            let start = self.pos;
            let kind = self.next_kind();
            debug_assert!(self.pos > start, "lexer must always make progress");
            out.push(Token { kind, start, end: self.pos });
        }
        out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.pos + ahead).copied()
    }

    fn next_kind(&mut self) -> TokenKind {
        let b = self.b[self.pos];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => {
                while matches!(self.peek(0), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                    self.pos += 1;
                }
                TokenKind::Whitespace
            }
            b'/' => match self.peek(1) {
                Some(b'/') => self.line_comment(),
                Some(b'*') => self.block_comment(),
                _ => {
                    self.pos += 1;
                    TokenKind::Punct(b'/')
                }
            },
            b'"' => self.string(),
            b'\'' => self.char_or_lifetime(),
            b':' => {
                if self.peek(1) == Some(b':') {
                    self.pos += 2;
                    TokenKind::ColonColon
                } else {
                    self.pos += 1;
                    TokenKind::Punct(b':')
                }
            }
            b'.' => {
                if self.peek(1) == Some(b'.') {
                    self.pos += 2;
                    TokenKind::DotDot
                } else {
                    self.pos += 1;
                    TokenKind::Punct(b'.')
                }
            }
            b if b.is_ascii_digit() => self.number(),
            b if is_ident_start(b) => self.ident_or_prefixed_literal(),
            b if b.is_ascii_punctuation() => {
                self.pos += 1;
                TokenKind::Punct(b)
            }
            _ => {
                // stray control byte; ASCII, so single-byte advance is safe
                self.pos += 1;
                TokenKind::Unknown
            }
        }
    }

    fn line_comment(&mut self) -> TokenKind {
        // `///x` is outer doc, `////` is plain, `//!` is inner doc
        let doc = match (self.peek(2), self.peek(3)) {
            (Some(b'/'), Some(b'/')) => Doc::None,
            (Some(b'/'), _) => Doc::Outer,
            (Some(b'!'), _) => Doc::Inner,
            _ => Doc::None,
        };
        while !matches!(self.peek(0), None | Some(b'\n')) {
            self.pos += 1;
        }
        TokenKind::LineComment(doc)
    }

    fn block_comment(&mut self) -> TokenKind {
        // `/**x` is outer doc unless it is `/**/`; `/*!` is inner doc
        let doc = match self.peek(2) {
            Some(b'*') if self.peek(3) != Some(b'/') && self.peek(3) != Some(b'*') => Doc::Outer,
            Some(b'!') => Doc::Inner,
            _ => Doc::None,
        };
        self.pos += 2;
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some(_), _) => self.pos += 1,
                (None, _) => break, // unterminated: consume to EOF
            }
        }
        TokenKind::BlockComment(doc)
    }

    /// A plain (escaped) string body; `pos` sits on the opening quote.
    fn string(&mut self) -> TokenKind {
        self.pos += 1;
        loop {
            match self.peek(0) {
                Some(b'\\') => self.pos += 2.min(self.b.len() - self.pos),
                Some(b'"') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => self.pos += 1,
                None => break, // unterminated
            }
        }
        TokenKind::Str
    }

    /// A raw string body with `hashes` closing hashes; `pos` sits on the
    /// opening quote.
    fn raw_string(&mut self, hashes: usize) -> TokenKind {
        self.pos += 1;
        while let Some(b) = self.peek(0) {
            self.pos += 1;
            if b == b'"'
                && self.b[self.pos..].iter().take(hashes).filter(|&&h| h == b'#').count() == hashes
            {
                self.pos += hashes;
                return TokenKind::Str;
            }
        }
        TokenKind::Str // unterminated
    }

    fn char_or_lifetime(&mut self) -> TokenKind {
        // `'a` followed by a non-quote is a lifetime; `'a'` is a char
        if let Some(n) = self.peek(1) {
            if is_ident_start(n) && self.peek(2) != Some(b'\'') {
                self.pos += 1;
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.pos += 1;
                }
                return TokenKind::Lifetime;
            }
        }
        self.pos += 1;
        loop {
            match self.peek(0) {
                Some(b'\\') => self.pos += 2.min(self.b.len() - self.pos),
                Some(b'\'') => {
                    self.pos += 1;
                    break;
                }
                Some(b'\n') | None => break, // unterminated
                Some(_) => self.pos += 1,
            }
        }
        TokenKind::Char
    }

    fn number(&mut self) -> TokenKind {
        // digits, base prefixes, suffixes: one alphanumeric/underscore
        // run, with `e`/`E` exponent signs and a fraction dot (only when
        // followed by a digit, so `1..n` and `x.0.max()` stay intact)
        let mut prev = 0u8;
        while let Some(b) = self.peek(0) {
            let continues = b.is_ascii_alphanumeric()
                || b == b'_'
                || ((b == b'+' || b == b'-') && matches!(prev, b'e' | b'E'))
                || (b == b'.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) && prev != b'.');
            if !continues {
                break;
            }
            prev = b;
            self.pos += 1;
        }
        TokenKind::Number
    }

    fn ident_or_prefixed_literal(&mut self) -> TokenKind {
        let start = self.pos;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        let ident = &self.b[start..self.pos];
        let raw_capable = matches!(ident, b"r" | b"br" | b"cr");
        let quote_capable = matches!(ident, b"b" | b"c" | b"r" | b"br" | b"cr");
        match self.peek(0) {
            Some(b'"') if quote_capable => {
                if raw_capable {
                    self.raw_string(0)
                } else {
                    self.string()
                }
            }
            Some(b'\'') if ident == b"b" => {
                // byte literal b'x' (never a lifetime)
                self.pos += 1;
                loop {
                    match self.peek(0) {
                        Some(b'\\') => self.pos += 2.min(self.b.len() - self.pos),
                        Some(b'\'') => {
                            self.pos += 1;
                            break;
                        }
                        Some(b'\n') | None => break,
                        Some(_) => self.pos += 1,
                    }
                }
                TokenKind::Char
            }
            Some(b'#') if raw_capable || ident == b"r" => {
                let mut hashes = 0;
                while self.peek(hashes) == Some(b'#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some(b'"') {
                    self.pos += hashes;
                    self.raw_string(hashes)
                } else if ident == b"r" && hashes == 1 && self.peek(1).is_some_and(is_ident_start) {
                    // raw identifier r#loop
                    self.pos += 1;
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.pos += 1;
                    }
                    TokenKind::Ident
                } else {
                    TokenKind::Ident
                }
            }
            _ => TokenKind::Ident,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .into_iter()
            .map(|t| t.kind)
            .filter(|k| *k != TokenKind::Whitespace)
            .collect()
    }

    #[test]
    fn spans_tile_simple_source() {
        let src = "fn main() { let x = v[0]; } // done";
        let toks = lex(src);
        let mut pos = 0;
        for t in &toks {
            assert_eq!(t.start, pos);
            pos = t.end;
        }
        assert_eq!(pos, src.len());
    }

    #[test]
    fn distinguishes_comments() {
        assert_eq!(kinds("// x"), vec![TokenKind::LineComment(Doc::None)]);
        assert_eq!(kinds("/// x"), vec![TokenKind::LineComment(Doc::Outer)]);
        assert_eq!(kinds("//! x"), vec![TokenKind::LineComment(Doc::Inner)]);
        assert_eq!(kinds("//// x"), vec![TokenKind::LineComment(Doc::None)]);
        assert_eq!(kinds("/* a /* b */ c */"), vec![TokenKind::BlockComment(Doc::None)]);
        assert_eq!(kinds("/**/"), vec![TokenKind::BlockComment(Doc::None)]);
    }

    #[test]
    fn strings_absorb_code_like_content() {
        // no Ident token may surface from inside literals
        assert_eq!(
            kinds(r#"let s = "v[0].unwrap()";"#)
                .iter()
                .filter(|k| **k == TokenKind::Str)
                .count(),
            1
        );
        assert_eq!(
            kinds(r##"let s = r#"Instant::now()"#;"##)
                .iter()
                .filter(|k| **k == TokenKind::Str)
                .count(),
            1
        );
        assert_eq!(
            kinds(r#"let b = b"panic!";"#).iter().filter(|k| **k == TokenKind::Str).count(),
            1
        );
    }

    #[test]
    fn chars_vs_lifetimes() {
        assert_eq!(kinds("'a'"), vec![TokenKind::Char]);
        assert_eq!(kinds("'\\n'"), vec![TokenKind::Char]);
        assert_eq!(
            kinds("&'a str"),
            vec![TokenKind::Punct(b'&'), TokenKind::Lifetime, TokenKind::Ident]
        );
        assert_eq!(kinds("'static"), vec![TokenKind::Lifetime]);
        assert_eq!(kinds("b'x'"), vec![TokenKind::Char]);
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        assert_eq!(kinds("0..n"), vec![TokenKind::Number, TokenKind::DotDot, TokenKind::Ident]);
        assert_eq!(kinds("1.5e-3"), vec![TokenKind::Number]);
        assert_eq!(kinds("0x1f_u64"), vec![TokenKind::Number]);
        assert_eq!(
            kinds("x.0.len()"),
            vec![
                TokenKind::Ident,
                TokenKind::Punct(b'.'),
                TokenKind::Number,
                TokenKind::Punct(b'.'),
                TokenKind::Ident,
                TokenKind::Punct(b'('),
                TokenKind::Punct(b')')
            ]
        );
    }

    #[test]
    fn paths_lex_as_colon_colon() {
        assert_eq!(
            kinds("Instant::now"),
            vec![TokenKind::Ident, TokenKind::ColonColon, TokenKind::Ident]
        );
    }

    #[test]
    fn str_values_decode() {
        assert_eq!(str_value("\"a/b\"").as_deref(), Some("a/b"));
        assert_eq!(str_value("r#\"x\"y\"#").as_deref(), Some("x\"y"));
        assert_eq!(str_value("\"a\\nb\"").as_deref(), Some("a\nb"));
    }

    #[test]
    fn survives_malformed_input() {
        for src in ["\"unterminated", "/* open", "'x", "r###\"open", "\u{7f}\u{0}"] {
            let toks = lex(src);
            assert_eq!(toks.last().map(|t| t.end), Some(src.len()), "{src:?}");
        }
    }
}
