//! The `locapd` wire protocol: newline-delimited JSON over a byte
//! stream.
//!
//! # Requests
//!
//! One JSON object per line. A **pipeline request** is
//!
//! ```json
//! {"id": 7, "pipeline": "eds-lower", "params": {"n": 9},
//!  "budget": {"deadline_ms": 5000, "max_rounds": 100000, "cache_cap": 100000}}
//! ```
//!
//! * `id` — required; any JSON scalar, echoed verbatim in the response.
//! * `pipeline` — one of [`locap_core::request::PIPELINES`].
//! * `params` — optional object; pipeline-specific (see
//!   [`locap_core::request::PipelineRequest::parse`]).
//! * `budget` — optional object; every field optional, unknown fields
//!   rejected. `deadline_ms` bounds wall-clock execution (measured from
//!   the moment a worker starts the job, not from enqueue), `max_rounds`
//!   bounds engine rounds/search steps, `cache_cap` bounds view-cache
//!   entries.
//!
//! An **operation request** is `{"op": "ping"}`, `{"op": "stats"}`,
//! `{"op": "subscribe"}` or `{"op": "shutdown"}`, with an optional `id`.
//!
//! # Responses
//!
//! Exactly one line per well-formed frame, in request order per
//! connection for operations and protocol errors; pipeline responses
//! arrive as workers finish (match them by `id`). Success:
//! `{"id": …, "ok": true, "pipeline": …, "elapsed_ms": …, "result": {…}}`.
//! Failure: `{"id": …, "ok": false, "error": {"kind": …, "message": …}}`
//! — the daemon never closes a connection on a bad frame, it answers it.
//! Frames that are empty or whitespace-only are ignored (keep-alive).
//!
//! Error kinds are namespaced: `protocol/<kind>` (this module),
//! `request/<kind>` ([`locap_core::request::RequestError`]),
//! `run/<kind>` ([`locap_models` run errors]), `truncated/<reason>`
//! (budget truncation) and `core/<kind>` (remaining
//! [`CoreError`] variants).
//!
//! Clients must keep the connection open until every response arrived:
//! closing the read half cancels the connection's in-flight jobs and
//! undeliverable responses are dropped (counted under
//! `serve/responses/undeliverable`).
//!
//! # Telemetry frames
//!
//! After an acknowledged `{"op": "subscribe"}`, the daemon interleaves
//! unsolicited **telemetry frames** onto the connection (one per
//! configured interval, whole lines — they never split a response):
//!
//! ```json
//! {"telemetry": "delta", "seq": 3, "interval_ms": 1000, "dropped": 0,
//!  "data": {"counters": {…}, "gauges": {…}, "spans": {…}, "latencies": {…}}}
//! ```
//!
//! `telemetry` is `"snapshot"` (full registry state — the first frame,
//! and the resync frame after any drop) or `"delta"` (only what changed
//! since the previous frame, in `locap_obs::telemetry` delta encoding).
//! `seq` increments per publisher tick (shared by all subscribers);
//! `dropped` counts frames this subscriber lost to slow-consumer
//! shedding. A frame is sent every tick even when nothing changed
//! (`"data"` all-empty), so subscribers can detect quiescence. Clients
//! distinguish telemetry frames by the `telemetry` key, which response
//! lines never carry.

use std::io::Read;
use std::sync::Arc;
use std::time::Duration;

use locap_core::request::{PipelineRequest, RequestError};
use locap_core::CoreError;
use locap_graph::budget::{MonotonicClock, RunBudget};
use locap_obs::json::Json;

/// Default cap on a single frame, in bytes.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 64 * 1024;

/// One frame from the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A complete line (without the trailing newline).
    Line(Vec<u8>),
    /// Clean end of stream at a frame boundary.
    Eof,
}

/// A framing failure.
#[derive(Debug)]
pub enum FrameError {
    /// The frame exceeded the configured cap. The reader has already
    /// resynchronised to the next newline; the connection can continue.
    TooLarge {
        /// The configured cap in bytes.
        limit: usize,
    },
    /// The stream ended in the middle of a frame.
    Unterminated,
    /// The underlying read timed out (`WouldBlock`/`TimedOut`); the
    /// partial frame is retained — call again to continue.
    Idle,
    /// Any other I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLarge { limit } => write!(f, "frame exceeds the {limit}-byte cap"),
            FrameError::Unterminated => write!(f, "stream ended mid-frame"),
            FrameError::Idle => write!(f, "read timed out; frame still open"),
            FrameError::Io(e) => write!(f, "read failed: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Incremental newline framing over a raw reader with a hard size cap.
///
/// Partial frames survive [`FrameError::Idle`] returns, so the reader
/// composes with socket read timeouts (the daemon polls its stop flag
/// between timeouts).
#[derive(Debug)]
pub struct FrameReader<R> {
    reader: R,
    max_len: usize,
    carry: Vec<u8>,
    oversize: bool,
}

impl<R: Read> FrameReader<R> {
    /// Wraps `reader` with a per-frame byte cap.
    pub fn new(reader: R, max_len: usize) -> FrameReader<R> {
        FrameReader { reader, max_len, carry: Vec::new(), oversize: false }
    }

    /// Reads the next frame.
    ///
    /// # Errors
    ///
    /// [`FrameError::TooLarge`] for an oversized frame (stream already
    /// resynchronised), [`FrameError::Unterminated`] at EOF mid-frame,
    /// [`FrameError::Idle`] on a read timeout, [`FrameError::Io`]
    /// otherwise.
    pub fn next_frame(&mut self) -> Result<Frame, FrameError> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(i) = self.carry.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.carry.drain(..=i).collect();
                line.pop();
                if self.oversize || line.len() > self.max_len {
                    self.oversize = false;
                    return Err(FrameError::TooLarge { limit: self.max_len });
                }
                return Ok(Frame::Line(line));
            }
            if self.carry.len() > self.max_len {
                // stop buffering; keep scanning for the resync newline
                self.oversize = true;
                self.carry.clear();
            }
            match self.reader.read(&mut chunk) {
                Ok(0) => {
                    return if self.carry.is_empty() && !self.oversize {
                        Ok(Frame::Eof)
                    } else {
                        Err(FrameError::Unterminated)
                    };
                }
                Ok(n) => self.carry.extend_from_slice(chunk.get(..n).unwrap_or_default()),
                Err(e) => match e.kind() {
                    std::io::ErrorKind::Interrupted => continue,
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                        return Err(FrameError::Idle)
                    }
                    _ => return Err(FrameError::Io(e)),
                },
            }
        }
    }
}

/// A typed rejection of a frame before it reaches a pipeline.
#[derive(Debug)]
pub enum ProtocolError {
    /// The frame is not valid JSON.
    BadJson {
        /// Parser diagnostic (with byte offset).
        message: String,
    },
    /// The frame is valid JSON but not an object.
    NotAnObject,
    /// A pipeline request without an `id`.
    MissingId,
    /// An `id` that is not a JSON scalar.
    BadId,
    /// Neither `pipeline` (a string) nor `op` present.
    MissingPipeline,
    /// An unrecognised `op` value.
    UnknownOp {
        /// The op the caller sent.
        op: String,
    },
    /// A malformed `budget` object.
    BadBudget {
        /// What was wrong with it.
        reason: String,
    },
    /// The frame exceeded the size cap.
    FrameTooLarge {
        /// The configured cap in bytes.
        limit: usize,
    },
    /// The job queue is full; retry later.
    Overloaded {
        /// The configured queue depth.
        queue_depth: usize,
    },
    /// The daemon is draining and accepts no new work.
    ShuttingDown,
    /// The `shutdown` op is disabled in this daemon's configuration.
    ShutdownDisabled,
    /// The `subscribe` op is disabled (`--telemetry-interval-ms 0`).
    TelemetryDisabled,
    /// The request parsed but its pipeline/params were rejected.
    Request(RequestError),
}

impl ProtocolError {
    /// The namespaced machine-readable kind (`protocol/...` or
    /// `request/...`).
    pub fn kind(&self) -> String {
        let k = match self {
            ProtocolError::BadJson { .. } => "bad_json",
            ProtocolError::NotAnObject => "not_an_object",
            ProtocolError::MissingId => "missing_id",
            ProtocolError::BadId => "bad_id",
            ProtocolError::MissingPipeline => "missing_pipeline",
            ProtocolError::UnknownOp { .. } => "unknown_op",
            ProtocolError::BadBudget { .. } => "bad_budget",
            ProtocolError::FrameTooLarge { .. } => "frame_too_large",
            ProtocolError::Overloaded { .. } => "overloaded",
            ProtocolError::ShuttingDown => "shutting_down",
            ProtocolError::ShutdownDisabled => "shutdown_disabled",
            ProtocolError::TelemetryDisabled => "telemetry_disabled",
            ProtocolError::Request(e) => return format!("request/{}", e.kind()),
        };
        format!("protocol/{k}")
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::BadJson { message } => write!(f, "invalid JSON: {message}"),
            ProtocolError::NotAnObject => write!(f, "a request must be a JSON object"),
            ProtocolError::MissingId => write!(f, "a pipeline request requires an \"id\""),
            ProtocolError::BadId => write!(f, "\"id\" must be a JSON scalar"),
            ProtocolError::MissingPipeline => {
                write!(f, "a request needs a string \"pipeline\" or \"op\" field")
            }
            ProtocolError::UnknownOp { op } => {
                write!(
                    f,
                    "unknown op {op:?}; expected \"ping\", \"stats\", \"subscribe\" or \
                     \"shutdown\""
                )
            }
            ProtocolError::BadBudget { reason } => write!(f, "bad budget: {reason}"),
            ProtocolError::FrameTooLarge { limit } => {
                write!(f, "frame exceeds the {limit}-byte cap")
            }
            ProtocolError::Overloaded { queue_depth } => {
                write!(f, "job queue full ({queue_depth} slots); retry later")
            }
            ProtocolError::ShuttingDown => write!(f, "daemon is shutting down"),
            ProtocolError::ShutdownDisabled => {
                write!(f, "the shutdown op is disabled for this daemon")
            }
            ProtocolError::TelemetryDisabled => {
                write!(f, "telemetry streaming is disabled for this daemon")
            }
            ProtocolError::Request(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// The per-request budget fields of the wire protocol.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BudgetSpec {
    /// Wall-clock execution bound, milliseconds.
    pub deadline_ms: Option<u64>,
    /// Engine round / search-step bound.
    pub max_rounds: Option<u64>,
    /// View-cache entry bound.
    pub cache_cap: Option<u64>,
}

impl BudgetSpec {
    /// Materialises the spec as a [`RunBudget`]. `default_deadline`
    /// applies when the request named none; `max_deadline` clamps
    /// whatever was requested. The deadline clock starts now — callers
    /// realise the budget when execution starts, not at parse time.
    pub fn realize(
        &self,
        clock: &Arc<dyn MonotonicClock>,
        default_deadline: Option<Duration>,
        max_deadline: Option<Duration>,
    ) -> RunBudget {
        let mut budget = RunBudget::unlimited();
        let mut deadline = self.deadline_ms.map(Duration::from_millis).or(default_deadline);
        if let Some(cap) = max_deadline {
            deadline = deadline.map(|d| d.min(cap)).or(Some(cap));
        }
        if let Some(d) = deadline {
            budget = budget.with_deadline(d, Arc::clone(clock));
        }
        if let Some(r) = self.max_rounds {
            budget = budget.with_max_rounds(r as usize);
        }
        if let Some(c) = self.cache_cap {
            budget = budget.with_cache_cap(c as usize);
        }
        budget
    }
}

/// A parsed frame.
#[derive(Debug)]
pub enum Request {
    /// A pipeline invocation.
    Pipeline {
        /// Caller-chosen correlation id, echoed in the response.
        id: Json,
        /// The parsed pipeline request.
        request: PipelineRequest,
        /// The requested budget.
        budget: BudgetSpec,
    },
    /// Liveness probe.
    Ping {
        /// Correlation id (JSON `null` when absent).
        id: Json,
    },
    /// Serving-counter snapshot.
    Stats {
        /// Correlation id (JSON `null` when absent).
        id: Json,
    },
    /// Attach this connection to the live telemetry stream.
    Subscribe {
        /// Correlation id (JSON `null` when absent).
        id: Json,
    },
    /// Orderly drain-and-exit.
    Shutdown {
        /// Correlation id (JSON `null` when absent).
        id: Json,
    },
}

fn scalar_id(v: &Json) -> Result<Json, ProtocolError> {
    match v {
        Json::Null | Json::Bool(_) | Json::Num(_) | Json::Str(_) => Ok(v.clone()),
        Json::Arr(_) | Json::Obj(_) => Err(ProtocolError::BadId),
    }
}

fn parse_budget(v: Option<&Json>) -> Result<BudgetSpec, ProtocolError> {
    let Some(v) = v else { return Ok(BudgetSpec::default()) };
    let Json::Obj(fields) = v else {
        return Err(ProtocolError::BadBudget { reason: "budget must be a JSON object".into() });
    };
    let mut spec = BudgetSpec::default();
    for (k, val) in fields {
        let slot = match k.as_str() {
            "deadline_ms" => &mut spec.deadline_ms,
            "max_rounds" => &mut spec.max_rounds,
            "cache_cap" => &mut spec.cache_cap,
            other => {
                return Err(ProtocolError::BadBudget {
                    reason: format!("unknown budget field {other:?}"),
                })
            }
        };
        *slot = Some(val.as_u64().ok_or_else(|| ProtocolError::BadBudget {
            reason: format!("budget field {k:?} must be a non-negative integer, got {val}"),
        })?);
    }
    Ok(spec)
}

/// Parses one frame into a [`Request`].
///
/// # Errors
///
/// A [`ProtocolError`] describing the first defect; never panics, for
/// any byte content (the conformance and property suites drive this
/// with adversarial frames).
pub fn parse_request(line: &[u8]) -> Result<Request, ProtocolError> {
    let text = std::str::from_utf8(line)
        .map_err(|e| ProtocolError::BadJson { message: format!("invalid UTF-8: {e}") })?;
    let doc = Json::parse(text).map_err(|e| ProtocolError::BadJson { message: e.to_string() })?;
    if !matches!(doc, Json::Obj(_)) {
        return Err(ProtocolError::NotAnObject);
    }
    if let Some(op) = doc.get("op") {
        let op = op.as_str().ok_or(ProtocolError::MissingPipeline)?;
        let id = match doc.get("id") {
            Some(v) => scalar_id(v)?,
            None => Json::Null,
        };
        return match op {
            "ping" => Ok(Request::Ping { id }),
            "stats" => Ok(Request::Stats { id }),
            "subscribe" => Ok(Request::Subscribe { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            other => Err(ProtocolError::UnknownOp { op: other.into() }),
        };
    }
    let id = scalar_id(doc.get("id").ok_or(ProtocolError::MissingId)?)?;
    if matches!(id, Json::Null) {
        return Err(ProtocolError::MissingId);
    }
    let pipeline = doc
        .get("pipeline")
        .and_then(Json::as_str)
        .ok_or(ProtocolError::MissingPipeline)?;
    // Frame-level (protocol) defects before request-level (domain) ones:
    // a bad budget is reported even when the params are also wrong.
    let budget = parse_budget(doc.get("budget"))?;
    let empty = Json::Obj(Vec::new());
    let params = doc.get("params").unwrap_or(&empty);
    let request = PipelineRequest::parse(pipeline, params).map_err(ProtocolError::Request)?;
    Ok(Request::Pipeline { id, request, budget })
}

/// Builds a success response line.
pub fn ok_response(id: &Json, pipeline: &str, elapsed_ms: u64, result: Json) -> Json {
    Json::Obj(vec![
        ("id".into(), id.clone()),
        ("ok".into(), Json::Bool(true)),
        ("pipeline".into(), Json::Str(pipeline.into())),
        ("elapsed_ms".into(), Json::Num(elapsed_ms as f64)),
        ("result".into(), result),
    ])
}

/// Builds one telemetry frame (see the module docs). `kind` is
/// `"snapshot"` or `"delta"`, `dropped` the subscriber's cumulative
/// shed-frame count, `data` a `locap_obs::telemetry` state object.
pub fn telemetry_frame(kind: &str, seq: u64, interval_ms: u64, dropped: u64, data: Json) -> Json {
    Json::Obj(vec![
        ("telemetry".into(), Json::Str(kind.into())),
        ("seq".into(), Json::Num(seq as f64)),
        ("interval_ms".into(), Json::Num(interval_ms as f64)),
        ("dropped".into(), Json::Num(dropped as f64)),
        ("data".into(), data),
    ])
}

/// A parsed telemetry frame, as seen by subscribers (`locap watch`, the
/// conformance suite).
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryFrame {
    /// `"snapshot"` or `"delta"`.
    pub kind: String,
    /// Publisher tick number.
    pub seq: u64,
    /// Publisher interval in milliseconds.
    pub interval_ms: u64,
    /// Frames this subscriber lost to slow-consumer shedding so far.
    pub dropped: u64,
    /// The state or delta payload.
    pub data: locap_obs::telemetry::TelemetryState,
}

impl TelemetryFrame {
    /// Parses a frame line; `Ok(None)` when the line is not a telemetry
    /// frame (no `telemetry` key — e.g. an interleaved response).
    ///
    /// # Errors
    ///
    /// A diagnostic when the line is not JSON or carries a malformed
    /// telemetry payload.
    pub fn parse(line: &str) -> Result<Option<TelemetryFrame>, String> {
        let doc = Json::parse(line).map_err(|e| e.to_string())?;
        let Some(kind) = doc.get("telemetry") else { return Ok(None) };
        let kind = kind.as_str().ok_or("telemetry kind is not a string")?.to_string();
        if kind != "snapshot" && kind != "delta" {
            return Err(format!("unknown telemetry kind {kind:?}"));
        }
        let field = |k: &str| doc.get(k).and_then(Json::as_u64).ok_or(format!("missing {k}"));
        let data = doc.get("data").ok_or("missing data")?;
        Ok(Some(TelemetryFrame {
            kind,
            seq: field("seq")?,
            interval_ms: field("interval_ms")?,
            dropped: field("dropped")?,
            data: locap_obs::telemetry::TelemetryState::from_json(data)?,
        }))
    }
}

/// Builds an error response line.
pub fn err_response(id: &Json, kind: &str, message: &str) -> Json {
    Json::Obj(vec![
        ("id".into(), id.clone()),
        ("ok".into(), Json::Bool(false)),
        (
            "error".into(),
            Json::Obj(vec![
                ("kind".into(), Json::Str(kind.into())),
                ("message".into(), Json::Str(message.into())),
            ]),
        ),
    ])
}

/// The namespaced error kind for a pipeline failure: `run/<kind>` for
/// model-run rejections, `truncated/<reason>` for budget truncation,
/// `core/<kind>` otherwise.
pub fn core_error_kind(e: &CoreError) -> String {
    match e {
        CoreError::Run(r) => format!("run/{}", r.kind()),
        CoreError::Truncated { reason, .. } => format!("truncated/{}", reason.kind()),
        other => format!("core/{}", other.kind()),
    }
}

#[cfg(test)]
mod tests {
    use std::io::Cursor;

    use super::*;

    fn frames(data: &[u8], max: usize) -> Vec<Result<Frame, String>> {
        let mut r = FrameReader::new(Cursor::new(data.to_vec()), max);
        let mut out = Vec::new();
        loop {
            match r.next_frame() {
                Ok(Frame::Eof) => {
                    out.push(Ok(Frame::Eof));
                    return out;
                }
                Ok(f) => out.push(Ok(f)),
                Err(e) => {
                    let stop = matches!(e, FrameError::Unterminated | FrameError::Io(_));
                    out.push(Err(e.to_string()));
                    if stop {
                        return out;
                    }
                }
            }
        }
    }

    #[test]
    fn frames_split_on_newlines() {
        let out = frames(b"abc\nde\n\nf\n", 100);
        assert_eq!(out.len(), 5);
        assert_eq!(out[0], Ok(Frame::Line(b"abc".to_vec())));
        assert_eq!(out[1], Ok(Frame::Line(b"de".to_vec())));
        assert_eq!(out[2], Ok(Frame::Line(Vec::new())));
        assert_eq!(out[3], Ok(Frame::Line(b"f".to_vec())));
        assert_eq!(out[4], Ok(Frame::Eof));
    }

    #[test]
    fn oversized_frame_resyncs() {
        let mut data = vec![b'x'; 50];
        data.push(b'\n');
        data.extend_from_slice(b"ok\n");
        let out = frames(&data, 10);
        assert!(out[0].as_ref().is_err_and(|e| e.contains("cap")), "{:?}", out[0]);
        assert_eq!(out[1], Ok(Frame::Line(b"ok".to_vec())));
        assert_eq!(out[2], Ok(Frame::Eof));
    }

    #[test]
    fn eof_mid_frame_is_unterminated() {
        let out = frames(b"partial", 100);
        assert!(out[0].as_ref().is_err_and(|e| e.contains("mid-frame")), "{:?}", out[0]);
    }

    #[test]
    fn parse_rejects_each_defect_with_its_kind() {
        let cases: &[(&[u8], &str)] = &[
            (b"not json", "protocol/bad_json"),
            (b"\xff\xfe", "protocol/bad_json"),
            (b"[1, 2]", "protocol/not_an_object"),
            (b"{\"pipeline\": \"census\"}", "protocol/missing_id"),
            (b"{\"id\": null, \"pipeline\": \"census\"}", "protocol/missing_id"),
            (b"{\"id\": [1], \"pipeline\": \"census\"}", "protocol/bad_id"),
            (b"{\"id\": 1}", "protocol/missing_pipeline"),
            (b"{\"id\": 1, \"pipeline\": 3}", "protocol/missing_pipeline"),
            (b"{\"op\": \"reboot\"}", "protocol/unknown_op"),
            (
                b"{\"id\": 1, \"pipeline\": \"census\", \"params\": {\"family\": \"directed-cycle\", \"n\": 12}, \"budget\": 5}",
                "protocol/bad_budget",
            ),
            (
                b"{\"id\": 1, \"pipeline\": \"census\", \"params\": {\"family\": \"directed-cycle\", \"n\": 12}, \"budget\": {\"deadlines\": 5}}",
                "protocol/bad_budget",
            ),
            (b"{\"id\": 1, \"pipeline\": \"nope\"}", "request/unknown_pipeline"),
            (b"{\"id\": 1, \"pipeline\": \"eds-lower\"}", "request/missing_param"),
        ];
        for (line, kind) in cases {
            let err = parse_request(line).expect_err("defective frame must be rejected");
            assert_eq!(&err.kind(), kind, "frame {:?}", String::from_utf8_lossy(line));
        }
    }

    #[test]
    fn parse_accepts_ops_and_pipelines() {
        assert!(matches!(parse_request(b"{\"op\": \"ping\"}"), Ok(Request::Ping { .. })));
        assert!(matches!(
            parse_request(b"{\"op\": \"stats\", \"id\": \"s1\"}"),
            Ok(Request::Stats { .. })
        ));
        assert!(matches!(parse_request(b"{\"op\": \"shutdown\"}"), Ok(Request::Shutdown { .. })));
        assert!(matches!(
            parse_request(b"{\"op\": \"subscribe\", \"id\": 9}"),
            Ok(Request::Subscribe { .. })
        ));
        let req = parse_request(
            b"{\"id\": 42, \"pipeline\": \"eds-lower\", \"params\": {\"n\": 9}, \"budget\": {\"deadline_ms\": 100}}",
        )
        .expect("well-formed request");
        let Request::Pipeline { id, request, budget } = req else {
            panic!("expected a pipeline request");
        };
        assert_eq!(id.as_u64(), Some(42));
        assert_eq!(request.pipeline(), "eds-lower");
        assert_eq!(budget.deadline_ms, Some(100));
        assert_eq!(budget.max_rounds, None);
    }

    #[test]
    fn telemetry_frames_round_trip_and_responses_pass_through() {
        let reg = locap_obs::Registry::new();
        reg.counter("serve/requests").add(3);
        reg.latency("serve/request/census/run").record_ns(1234);
        let data = locap_obs::telemetry::TelemetryState::capture(&reg);
        let line = telemetry_frame("snapshot", 7, 250, 1, data.to_json()).to_string();
        let frame = TelemetryFrame::parse(&line).expect("parse").expect("is telemetry");
        assert_eq!(frame.kind, "snapshot");
        assert_eq!((frame.seq, frame.interval_ms, frame.dropped), (7, 250, 1));
        assert_eq!(frame.data, data);

        let response = ok_response(&Json::Num(1.0), "census", 3, Json::Obj(vec![])).to_string();
        assert_eq!(TelemetryFrame::parse(&response).expect("parse"), None);
        assert!(TelemetryFrame::parse("{\"telemetry\": \"weird\", \"seq\": 0}").is_err());
        assert!(TelemetryFrame::parse("{\"telemetry\": \"delta\"}").is_err());
    }

    #[test]
    fn responses_have_the_documented_shape() {
        let ok = ok_response(&Json::Num(7.0), "census", 12, Json::Obj(vec![]));
        assert_eq!(ok.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(ok.get("pipeline").and_then(Json::as_str), Some("census"));
        let err = err_response(&Json::Str("a".into()), "protocol/bad_json", "nope");
        assert_eq!(err.get("ok"), Some(&Json::Bool(false)));
        let kind = err.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str);
        assert_eq!(kind, Some("protocol/bad_json"));
    }
}
