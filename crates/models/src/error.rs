//! Typed errors for the execution core (simulator, engines, `run::*`).
//!
//! Every precondition the simulator and the engines place on
//! user-supplied input — identifiers present and long enough, input
//! slices matching the node count, ports in range with reverse ports,
//! orientations covering every edge, algorithm outputs of the right
//! shape — surfaces as a [`RunError`] instead of a panic. Construction
//! goes through [`RunError::publish`], which bumps an
//! `errors/run/<kind>` counter in `locap-obs` so failing requests are
//! visible in `OBS_JSON` snapshots and traces.

use std::fmt;

use locap_graph::GraphError;
use locap_obs as obs;

/// An error from running an algorithm over an instance.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RunError {
    /// The algorithm needs identifiers but the run is anonymous
    /// (`ids: None`).
    MissingIds,
    /// The algorithm needs per-node inputs but none were supplied.
    MissingInputs,
    /// The algorithm needs an edge orientation but none was supplied.
    MissingOrientation,
    /// A per-node slice (`ids`, `inputs`, `rank`, ports) does not match
    /// the node count.
    InputLengthMismatch {
        /// Which slice is wrong (`"ids"`, `"inputs"`, `"rank"`, …).
        what: &'static str,
        /// Expected length (the instance's node count).
        expected: usize,
        /// Actual slice length.
        actual: usize,
    },
    /// The supplied orientation does not orient edge `{u, v}`.
    UnorientedEdge {
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
    /// A port number has no neighbour under the supplied numbering.
    PortOutOfRange {
        /// The node whose port is out of range.
        node: usize,
        /// The offending port.
        port: usize,
        /// The node's degree under the numbering.
        degree: usize,
    },
    /// The numbering has no reverse port for a delivered message.
    MissingReversePort {
        /// Sending node.
        from: usize,
        /// Receiving node.
        to: usize,
    },
    /// An edge algorithm returned an output of the wrong length.
    OutputLengthMismatch {
        /// The node whose output is malformed.
        node: usize,
        /// Expected length (the node's degree).
        expected: usize,
        /// Actual output length.
        actual: usize,
    },
    /// A PO edge algorithm selected a letter absent at the node.
    AbsentLetter {
        /// The node.
        node: usize,
        /// Display form of the absent letter.
        letter: String,
    },
    /// The algorithm does not support this instance (e.g. a
    /// cycle-only algorithm on a node of degree ≠ 2).
    Unsupported {
        /// Human-readable reason.
        reason: String,
    },
    /// A structural error from the graph layer.
    Graph(GraphError),
}

impl RunError {
    /// Stable short name, used as the counter suffix.
    pub fn kind(&self) -> &'static str {
        match self {
            RunError::MissingIds => "missing_ids",
            RunError::MissingInputs => "missing_inputs",
            RunError::MissingOrientation => "missing_orientation",
            RunError::InputLengthMismatch { .. } => "input_length",
            RunError::UnorientedEdge { .. } => "unoriented_edge",
            RunError::PortOutOfRange { .. } => "port_out_of_range",
            RunError::MissingReversePort { .. } => "missing_reverse_port",
            RunError::OutputLengthMismatch { .. } => "output_length",
            RunError::AbsentLetter { .. } => "absent_letter",
            RunError::Unsupported { .. } => "unsupported",
            RunError::Graph(_) => "graph",
        }
    }

    /// Publishes this error to the obs registry (`errors/run/<kind>`)
    /// and returns it. Every error-construction site in the execution
    /// core goes through this, so OBS_JSON snapshots count failures.
    pub fn publish(self) -> RunError {
        obs::counter(&format!("errors/run/{}", self.kind())).inc();
        self
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::MissingIds => {
                write!(f, "algorithm needs identifiers but the run is anonymous")
            }
            RunError::MissingInputs => {
                write!(f, "algorithm needs per-node inputs but none were supplied")
            }
            RunError::MissingOrientation => {
                write!(f, "algorithm needs an edge orientation but none was supplied")
            }
            RunError::InputLengthMismatch { what, expected, actual } => {
                write!(f, "{what} slice has length {actual}, expected {expected}")
            }
            RunError::UnorientedEdge { u, v } => {
                write!(f, "orientation does not cover edge {{{u}, {v}}}")
            }
            RunError::PortOutOfRange { node, port, degree } => {
                write!(f, "port {port} out of range at node {node} (degree {degree})")
            }
            RunError::MissingReversePort { from, to } => {
                write!(f, "no reverse port for message {from} -> {to}")
            }
            RunError::OutputLengthMismatch { node, expected, actual } => {
                write!(f, "edge output at node {node} has length {actual}, expected {expected}")
            }
            RunError::AbsentLetter { node, letter } => {
                write!(f, "algorithm selected absent letter {letter} at node {node}")
            }
            RunError::Unsupported { reason } => write!(f, "unsupported instance: {reason}"),
            RunError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<GraphError> for RunError {
    fn from(e: GraphError) -> RunError {
        RunError::Graph(e).publish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(RunError::MissingIds.to_string().contains("anonymous"));
        let e = RunError::InputLengthMismatch { what: "ids", expected: 5, actual: 3 };
        assert_eq!(e.to_string(), "ids slice has length 3, expected 5");
        let e = RunError::UnorientedEdge { u: 1, v: 2 };
        assert!(e.to_string().contains("{1, 2}"));
        let e = RunError::PortOutOfRange { node: 0, port: 7, degree: 2 };
        assert!(e.to_string().contains("port 7"));
        let e = RunError::MissingReversePort { from: 3, to: 4 };
        assert!(e.to_string().contains("3 -> 4"));
        let e = RunError::OutputLengthMismatch { node: 9, expected: 3, actual: 1 };
        assert!(e.to_string().contains("node 9"));
        let e = RunError::AbsentLetter { node: 2, letter: "0'".into() };
        assert!(e.to_string().contains("0'"));
    }

    #[test]
    fn publish_counts_by_kind() {
        let before = obs::counter("errors/run/missing_ids").get();
        let e = RunError::MissingIds.publish();
        assert_eq!(e, RunError::MissingIds);
        assert_eq!(obs::counter("errors/run/missing_ids").get(), before + 1);
    }

    #[test]
    fn graph_error_converts_and_counts() {
        let before = obs::counter("errors/run/graph").get();
        let ge = locap_graph::Graph::new(2).add_edge(0, 5).unwrap_err();
        let e: RunError = ge.clone().into();
        assert_eq!(e, RunError::Graph(ge));
        assert_eq!(obs::counter("errors/run/graph").get(), before + 1);
        assert_eq!(e.kind(), "graph");
    }
}
