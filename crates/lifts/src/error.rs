use std::fmt;

/// Errors from lift construction and covering-map verification.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LiftError {
    /// The candidate map has the wrong domain size.
    WrongDomain {
        /// Expected size (|V(H)|).
        expected: usize,
        /// Actual size.
        actual: usize,
    },
    /// The candidate map sends a node outside the codomain.
    ImageOutOfRange {
        /// The offending node of H.
        node: usize,
    },
    /// The candidate map is not onto.
    NotOnto {
        /// A node of G with empty fibre.
        uncovered: usize,
    },
    /// The candidate map is not a local bijection at some node.
    NotLocalBijection {
        /// The offending node of H.
        node: usize,
        /// The label at which the defect occurs.
        label: usize,
        /// Human-readable detail.
        detail: String,
    },
    /// Invalid parameters for a lift construction.
    BadParameters {
        /// Description of the defect.
        reason: String,
    },
}

impl fmt::Display for LiftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiftError::WrongDomain { expected, actual } => {
                write!(f, "covering map domain has size {actual}, expected {expected}")
            }
            LiftError::ImageOutOfRange { node } => {
                write!(f, "image of node {node} is out of range")
            }
            LiftError::NotOnto { uncovered } => {
                write!(f, "map is not onto: node {uncovered} has empty fibre")
            }
            LiftError::NotLocalBijection { node, label, detail } => {
                write!(f, "not a local bijection at node {node}, label {label}: {detail}")
            }
            LiftError::BadParameters { reason } => write!(f, "bad parameters: {reason}"),
        }
    }
}

impl std::error::Error for LiftError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(LiftError::WrongDomain { expected: 4, actual: 2 }.to_string().contains("4"));
        assert!(LiftError::NotOnto { uncovered: 3 }.to_string().contains("3"));
        let e: Box<dyn std::error::Error> =
            Box::new(LiftError::BadParameters { reason: "l=0".into() });
        assert!(e.to_string().contains("l=0"));
    }
}
