//! Bench: a short deterministic soak against an in-process `locapd`.
//!
//! One iteration = one complete open-loop soak run (fixed QPS, fixed
//! duration, census workload) through `locap_bench::soak` — the same
//! engine the `soak` binary and the CI smoke job use. The gate tracks
//! its wall time so regressions in the telemetry/soak path (request
//! phases, response matching, histogram recording) show up in
//! `BENCH_views.json` like any other scenario; the run must also come
//! back clean, so the bench doubles as an end-to-end sanity check.

#![forbid(unsafe_code)]

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use locap_bench::soak::{run_soak, SoakConfig};
use locap_serve::daemon::{Daemon, DaemonConfig};

/// Offered rate: modest enough that the run is schedule-bound (the
/// iteration time is dominated by the fixed duration, not daemon
/// throughput), so the median is stable across hosts.
const QPS: f64 = 400.0;
const DURATION: Duration = Duration::from_millis(250);
const CONNECTIONS: usize = 2;

fn bench_soak(c: &mut Criterion) {
    let config = DaemonConfig {
        workers: 2,
        queue_depth: 256,
        default_deadline: Some(Duration::from_secs(30)),
        ..DaemonConfig::default()
    };
    let daemon = Daemon::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = daemon.local_addr();
    let handle = daemon.handle();
    let server = std::thread::spawn(move || daemon.run());

    let cfg = SoakConfig {
        addr: addr.to_string(),
        qps: QPS,
        duration: DURATION,
        connections: CONNECTIONS,
        ..SoakConfig::default()
    };
    let mut group = c.benchmark_group("soak");
    group.sample_size(10);
    group.bench_function("census_qps400_250ms", |b| {
        b.iter(|| {
            let report = run_soak(&cfg).expect("soak config is valid");
            assert!(
                report.passed(),
                "soak against the in-process daemon must be clean: {report:?}"
            );
            assert_eq!(report.sent, (QPS * DURATION.as_secs_f64()) as u64);
            report
        })
    });
    group.finish();

    handle.shutdown();
    server.join().expect("daemon thread").expect("daemon run");
}

criterion_group!(benches, bench_soak);
criterion_main!(benches);
