//! E07 — Theorem 3.2 / §5: homogeneous graphs of large girth.
//!
//! Constructs the wreath-product Cayley graphs for a grid of (k, r, m),
//! reporting for each: the group, the generators found, the verified
//! girth bound, the exact homogeneity census vs the inner-box bound
//! ((m−2r)/m)^d, and that τ* is independent of m (the "independent of ε"
//! clause of the theorem).

#![forbid(unsafe_code)]

use locap_bench::{cells, hprintln, timed, Table};
use locap_core::homogeneous::{construct, construct_for_epsilon};
use locap_num::Ratio;

fn main() {
    locap_bench::run(
        "e07_homogeneous",
        "E07",
        "Thm 3.2 — (1−ε, r)-homogeneous 2k-regular graphs, girth > 2r+1",
        body,
    );
}

fn body() {
    hprintln!();
    let mut t = Table::new(&[
        "k",
        "r",
        "m",
        "level",
        "n",
        "girth>",
        "gens",
        "census α",
        "bound ((m−2r)/m)^d",
        "time",
    ]);
    let mut tau_consistency = Vec::new();
    let ((), total) = timed(|| {
        for (k, r, ms) in [
            (1usize, 1usize, vec![6u64, 10, 16, 24, 32]),
            (2, 1, vec![6, 10, 16, 20]),
            (1, 2, vec![8, 12, 20, 24]),
            (2, 2, vec![12, 16, 20]),
        ] {
            let mut taus = Vec::new();
            for &m in &ms {
                let (result, dt) = timed(|| construct(k, r, m));
                match result {
                    Ok(h) => {
                        t.row(&cells([
                            &k,
                            &r,
                            &m,
                            &h.level,
                            &h.node_count(),
                            &(2 * r + 1),
                            &format!("{:?}", h.gens),
                            &format!("{} ≈ {:.4}", h.fraction(), h.fraction().to_f64()),
                            &format!("{} ≈ {:.4}", h.inner_bound(), h.inner_bound().to_f64()),
                            &format!("{dt:.2?}"),
                        ]));
                        taus.push(h.tau_star.clone());
                    }
                    Err(e) => {
                        t.row(&cells([
                            &k,
                            &r,
                            &m,
                            &"-",
                            &"-",
                            &(2 * r + 1),
                            &format!("FAILED: {e}"),
                            &"-",
                            &"-",
                            &format!("{dt:.2?}"),
                        ]));
                    }
                }
            }
            let consistent = taus.windows(2).all(|w| w[0] == w[1]);
            tau_consistency.push((k, r, consistent));
        }
    });
    t.print();
    hprintln!("\ntotal construction+census wall time: {total:.2?}");

    hprintln!("\nτ* independence of ε (same type for every m):");
    for (k, r, ok) in tau_consistency {
        hprintln!("  k={k}, r={r}: {}", if ok { "CONSISTENT" } else { "MISMATCH" });
    }

    hprintln!("\n\"for every ε\" form — smallest m with bound ≥ 1−ε (level 2):\n");
    let mut t = Table::new(&["k", "r", "ε", "chosen m", "n", "census α"]);
    for (k, r, num, den) in [(1usize, 1usize, 1i128, 4i128), (1, 1, 1, 10), (2, 1, 1, 4)] {
        let eps = Ratio::new(num, den).unwrap();
        match construct_for_epsilon(k, r, eps) {
            Ok(h) => t.row(&cells([
                &k,
                &r,
                &eps,
                &h.modulus,
                &h.node_count(),
                &format!("{:.4}", h.fraction().to_f64()),
            ])),
            Err(e) => t.row(&cells([&k, &r, &eps, &"-", &"-", &format!("FAILED: {e}")])),
        };
    }
    t.print();
}
