//! Bench: warm (store-served) vs cold (recomputed) `locapd` round-trips
//! for an identical census request.
//!
//! Two in-process daemons serve the same deliberately compute-heavy
//! census (directed cycle, n = 4096, radius = 8 — milliseconds of
//! refinement, so the round-trip is compute-bound rather than
//! network-bound). The `cold_census` daemon has no store and recomputes
//! every iteration; the `warm_census` daemon runs with `store_dir`
//! primed by one initial request, so every measured iteration answers
//! from disk. The bench_gate `locap-serve:store_warm` rows keep the
//! warm < cold margin honest, and the final stats probe asserts the
//! warm daemon really served from the store.

#![forbid(unsafe_code)]

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use locap_serve::daemon::{Daemon, DaemonConfig};

/// Large enough that a census recompute is milliseconds of work — the
/// warm/cold contrast must dominate TCP round-trip noise.
const CENSUS_N: usize = 4096;
const CENSUS_RADIUS: usize = 8;

fn census_request(id: &str) -> String {
    format!(
        "{{\"id\":\"{id}\",\"pipeline\":\"census\",\"params\":{{\"family\":\"directed-cycle\",\
         \"n\":{CENSUS_N},\"radius\":{CENSUS_RADIUS}}}}}\n"
    )
}

struct Client {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
    line: String,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to in-process daemon");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { reader, stream, line: String::new() }
    }

    fn roundtrip(&mut self, request: &str) -> &str {
        self.stream.write_all(request.as_bytes()).expect("write request");
        self.line.clear();
        self.reader.read_line(&mut self.line).expect("read response");
        assert!(self.line.contains("\"ok\":true"), "unexpected response: {}", self.line);
        &self.line
    }
}

fn spawn_daemon(store_dir: Option<std::path::PathBuf>) -> (SocketAddr, impl FnOnce()) {
    let config = DaemonConfig {
        workers: 1,
        default_deadline: Some(Duration::from_secs(60)),
        store_dir,
        ..DaemonConfig::default()
    };
    let daemon = Daemon::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = daemon.local_addr();
    let handle = daemon.handle();
    let server = std::thread::spawn(move || daemon.run());
    (addr, move || {
        handle.shutdown();
        server.join().expect("daemon thread").expect("daemon run");
    })
}

fn bench_store_warm(c: &mut Criterion) {
    let store_root = std::env::temp_dir().join(format!("locap-bench-store-{}", std::process::id()));
    std::fs::remove_dir_all(&store_root).ok();

    let (cold_addr, stop_cold) = spawn_daemon(None);
    let (warm_addr, stop_warm) = spawn_daemon(Some(store_root.clone()));

    let mut group = c.benchmark_group("store");
    group.sample_size(10);
    group.bench_function("cold_census", |b| {
        let mut client = Client::connect(cold_addr);
        let request = census_request("cold");
        b.iter(|| {
            client.roundtrip(&request);
        })
    });
    group.bench_function("warm_census", |b| {
        let mut client = Client::connect(warm_addr);
        let request = census_request("warm");
        // prime the store: the first request computes and writes back
        client.roundtrip(&request);
        b.iter(|| {
            client.roundtrip(&request);
        })
    });
    group.finish();

    // the warm daemon must actually have served from the store
    let mut client = Client::connect(warm_addr);
    let stats = client.roundtrip("{\"id\":\"stats\",\"op\":\"stats\"}\n").to_string();
    let warm_hits: u64 = stats
        .split("\"store/warm_hit\":")
        .nth(1)
        .and_then(|rest| rest.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|tok| tok.parse().ok())
        .expect("stats response carries store/warm_hit");
    assert!(warm_hits > 0, "warm daemon never hit the store: {stats}");

    stop_cold();
    stop_warm();
    std::fs::remove_dir_all(&store_root).ok();
}

criterion_group!(benches, bench_store_warm);
criterion_main!(benches);
