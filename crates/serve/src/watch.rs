//! `locap watch` — subscribe to a running `locapd` and render its live
//! telemetry stream as a human table or TSV rows.
//!
//! The client sends `{"op": "subscribe"}`, applies the resulting
//! snapshot/delta frames to a local [`TelemetryState`] replica, and
//! renders one block per frame: counters with per-interval rates,
//! gauges, and span/latency histograms with p50/p90/p99 quantiles
//! (log₂ resolution for spans, 1/16-relative for latencies). Rendering
//! is pure ([`render_frame`]) so the formats are unit-testable.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use locap_obs::telemetry::TelemetryState;
use locap_obs::{bucket_upper_bound, fine_bucket_upper_bound};

use crate::protocol::TelemetryFrame;

/// Options for a watch session.
#[derive(Debug, Clone)]
pub struct WatchOptions {
    /// `host:port` of the daemon.
    pub addr: String,
    /// Stop after this many telemetry frames (`None`: until disconnect).
    pub frames: Option<u64>,
    /// Emit TSV rows instead of the human table.
    pub tsv: bool,
    /// Only show metrics whose name starts with this prefix.
    pub filter: Option<String>,
}

/// Formats nanoseconds with a human unit (ns/µs/ms/s).
pub fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

fn keep(filter: &Option<String>, name: &str) -> bool {
    match filter {
        Some(prefix) => name.starts_with(prefix.as_str()),
        None => true,
    }
}

/// Renders one received frame against the reconstructed `state` (the
/// frame's delta already applied). `delta` is the frame's own payload
/// for `"delta"` frames (drives the rate column); snapshot frames show
/// absolute values only.
pub fn render_frame(
    state: &TelemetryState,
    frame: &TelemetryFrame,
    tsv: bool,
    filter: &Option<String>,
) -> String {
    let mut out = String::new();
    let delta = (frame.kind == "delta").then_some(&frame.data);
    let interval_s = (frame.interval_ms.max(1) as f64) / 1000.0;
    let rate = |name: &str| -> Option<f64> {
        let moved = delta?.counters.get(name).copied()?;
        Some(moved as f64 / interval_s)
    };
    if tsv {
        for (name, v) in &state.counters {
            if !keep(filter, name) {
                continue;
            }
            let rate = rate(name).map_or("-".into(), |r| format!("{r:.1}"));
            out.push_str(&format!("{}\tcounter\t{name}\t{v}\t{rate}\n", frame.seq));
        }
        for (name, v) in &state.gauges {
            if keep(filter, name) {
                out.push_str(&format!("{}\tgauge\t{name}\t{v}\t-\n", frame.seq));
            }
        }
        for (section, upper) in [
            (&state.spans, bucket_upper_bound as fn(usize) -> u64),
            (&state.latencies, fine_bucket_upper_bound as fn(usize) -> u64),
        ] {
            let label = if std::ptr::eq(section, &state.spans) { "span" } else { "latency" };
            for (name, h) in section.iter() {
                if !keep(filter, name) {
                    continue;
                }
                let [p50, p90, p99] = [0.5, 0.9, 0.99].map(|q| h.quantile_with(q, upper));
                out.push_str(&format!(
                    "{}\t{label}\t{name}\t{}\t{p50}\t{p90}\t{p99}\n",
                    frame.seq, h.count
                ));
            }
        }
        return out;
    }
    out.push_str(&format!(
        "== seq {} ({}, interval {}ms, dropped {}) ==\n",
        frame.seq, frame.kind, frame.interval_ms, frame.dropped
    ));
    for (name, v) in &state.counters {
        if !keep(filter, name) {
            continue;
        }
        match rate(name) {
            Some(r) => out.push_str(&format!("  counter  {name:<44} {v:>12}  {r:>8.1}/s\n")),
            None => out.push_str(&format!("  counter  {name:<44} {v:>12}\n")),
        }
    }
    for (name, v) in &state.gauges {
        if keep(filter, name) {
            out.push_str(&format!("  gauge    {name:<44} {v:>12}\n"));
        }
    }
    for (label, section, upper) in [
        ("span", &state.spans, bucket_upper_bound as fn(usize) -> u64),
        ("latency", &state.latencies, fine_bucket_upper_bound as fn(usize) -> u64),
    ] {
        for (name, h) in section.iter() {
            if !keep(filter, name) {
                continue;
            }
            let [p50, p90, p99] = [0.5, 0.9, 0.99].map(|q| h.quantile_with(q, upper));
            out.push_str(&format!(
                "  {label:<8} {name:<44} {:>12}  p50 {} p90 {} p99 {}\n",
                h.count,
                fmt_ns(p50),
                fmt_ns(p90),
                fmt_ns(p99)
            ));
        }
    }
    out
}

/// Connects, subscribes, and streams rendered frames into `out` until
/// `opts.frames` frames arrived (or the daemon disconnects).
///
/// # Errors
///
/// Connection/read/write failures, a rejected subscribe, or a malformed
/// telemetry frame, as a displayable message.
pub fn run(opts: &WatchOptions, out: &mut impl Write) -> Result<(), String> {
    let stream =
        TcpStream::connect(&opts.addr).map_err(|e| format!("connect to {}: {e}", opts.addr))?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone stream: {e}"))?;
    writer
        .write_all(b"{\"op\": \"subscribe\", \"id\": \"watch\"}\n")
        .and_then(|()| writer.flush())
        .map_err(|e| format!("send subscribe: {e}"))?;
    let reader = BufReader::new(stream);
    let mut state = TelemetryState::default();
    let mut anchored = false;
    let mut seen = 0u64;
    for line in reader.lines() {
        let line = line.map_err(|e| format!("read: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let Some(frame) = TelemetryFrame::parse(&line)? else {
            // the subscribe ack (or an interleaved response): reject a
            // refused subscription, pass anything else through
            let doc = locap_obs::json::Json::parse(&line).map_err(|e| e.to_string())?;
            if doc.get("ok") == Some(&locap_obs::json::Json::Bool(false)) {
                return Err(format!("subscribe rejected: {line}"));
            }
            continue;
        };
        match frame.kind.as_str() {
            "snapshot" => {
                state = frame.data.clone();
                anchored = true;
            }
            _ => {
                if !anchored {
                    // never apply a delta before the first snapshot
                    continue;
                }
                state.apply(&frame.data);
            }
        }
        out.write_all(render_frame(&state, &frame, opts.tsv, &opts.filter).as_bytes())
            .and_then(|()| out.flush())
            .map_err(|e| format!("write: {e}"))?;
        seen += 1;
        if opts.frames.is_some_and(|n| seen >= n) {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use locap_obs::Registry;

    fn frame_of(kind: &str, reg: &Registry, seq: u64) -> TelemetryFrame {
        TelemetryFrame {
            kind: kind.into(),
            seq,
            interval_ms: 500,
            dropped: 0,
            data: TelemetryState::capture(reg),
        }
    }

    #[test]
    fn tsv_rows_carry_rates_and_quantiles() {
        let reg = Registry::new();
        reg.counter("serve/requests").add(10);
        reg.gauge("serve/queue_depth").set(2);
        reg.latency("serve/request/census/run").record_ns(2000);
        let state = TelemetryState::capture(&reg);
        // a delta frame moving serve/requests by 10 over 500ms = 20/s
        let frame = frame_of("delta", &reg, 3);
        let text = render_frame(&state, &frame, true, &None);
        assert!(text.contains("3\tcounter\tserve/requests\t10\t20.0"), "{text}");
        assert!(text.contains("3\tgauge\tserve/queue_depth\t2\t-"), "{text}");
        assert!(text.contains("3\tlatency\tserve/request/census/run\t1\t"), "{text}");
    }

    #[test]
    fn snapshot_frames_render_without_rates() {
        let reg = Registry::new();
        reg.counter("serve/requests").add(4);
        let state = TelemetryState::capture(&reg);
        let frame = frame_of("snapshot", &reg, 0);
        let tsv = render_frame(&state, &frame, true, &None);
        assert!(tsv.contains("0\tcounter\tserve/requests\t4\t-"), "{tsv}");
        let human = render_frame(&state, &frame, false, &None);
        assert!(human.starts_with("== seq 0 (snapshot, interval 500ms, dropped 0) =="), "{human}");
        assert!(human.contains("serve/requests"), "{human}");
    }

    #[test]
    fn filter_restricts_all_sections() {
        let reg = Registry::new();
        reg.counter("serve/requests").inc();
        reg.counter("telemetry/dropped").inc();
        reg.latency("soak/latency_ns").record_ns(1);
        let state = TelemetryState::capture(&reg);
        let frame = frame_of("snapshot", &reg, 1);
        let text = render_frame(&state, &frame, true, &Some("telemetry/".into()));
        assert!(text.contains("telemetry/dropped"), "{text}");
        assert!(!text.contains("serve/requests"), "{text}");
        assert!(!text.contains("soak/"), "{text}");
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(0), "0ns");
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.5ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.21s");
    }
}
