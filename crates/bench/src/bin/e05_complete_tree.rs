//! E05 — Fig. 5: the complete tree (T*, λ).
//!
//! Prints `t = |T*|` for a grid of alphabet sizes and radii (the quantity
//! the Ramsey argument of §4.2 depends on), verifies the branching
//! structure (root degree 2|L|, inner degree 2|L|−1 children), and shows
//! Fig. 5's instance |L| = 2, r = 2 explicitly.

#![forbid(unsafe_code)]

use locap_bench::{cells, hprint, hprintln, timed, Table};
use locap_core::eds_lower::eds_instance;
use locap_lifts::{
    complete_tree, reduced_words, t_star_size, view_census, view_census_naive, ViewCache,
};

fn main() {
    locap_bench::run(
        "e05_complete_tree",
        "E05",
        "Fig. 5 — the complete L-labelled tree (T*, λ)",
        body,
    );
}

fn body() {
    hprintln!("\nt = |T*| (vertices = reduced words of length ≤ r):\n");
    let mut t = Table::new(&["|L|", "r=1", "r=2", "r=3", "r=4"]);
    for labels in 1..=4usize {
        t.row(&cells([
            &labels,
            &t_star_size(labels, 1),
            &t_star_size(labels, 2),
            &t_star_size(labels, 3),
            &t_star_size(labels, 4),
        ]));
    }
    t.print();

    hprintln!("\nFig. 5 instance |L| = 2, r = 2: the 17 reduced words:\n");
    for w in reduced_words(2, 2) {
        hprint!("{w}  ");
    }
    hprintln!();

    let tree = complete_tree(2, 2);
    hprintln!("\nroot children: {} (= 2|L|)", tree.root.children.len());
    let inner_ok = tree.root.children.iter().all(|(_, c)| c.children.len() == 3);
    hprintln!("every depth-1 node has 3 children (= 2|L| − 1): {inner_ok}");
    hprintln!("size matches closed formula: {}", tree.size() == t_star_size(2, 2));

    // On a label-complete L-digraph every radius-r view IS (T*, λ), so the
    // engine interns all n trees into a single class — the extreme case of
    // its memoization. Compare against the per-vertex reference path.
    hprintln!("\nView engine on a label-complete instance (|L| = 2, every view = T*):\n");
    let inst = eds_instance(4, 7 * 512).expect("4-regular lift instance");
    let d = &inst.digraph;
    let r = 3;
    let (naive, t_naive) = timed(|| view_census_naive(d, r));
    let (census, t_engine) = timed(|| view_census(d, r));
    assert_eq!(naive, census, "engine census must be bit-identical");
    let mut cache = ViewCache::new(d);
    let _ = cache.census(r);
    let stats = cache.stats();
    hprintln!(
        "n = {}, r = {r}: {} view class(es), |view| = {} = t_star_size(2, {r}) = {}",
        d.node_count(),
        census.len(),
        census[0].0.size(),
        t_star_size(2, r),
    );
    hprintln!(
        "engine counters: {} states, classes by level {:?}, tree memo {} hits / {} misses, \
         dedup {:.1}x, {} worker(s)",
        stats.states,
        stats.classes,
        stats.tree_hits,
        stats.tree_misses,
        stats.dedup_ratio(),
        stats.workers,
    );
    hprintln!(
        "census time: naive {:.2?} vs engine {:.2?} ({:.1}x)",
        t_naive,
        t_engine,
        t_naive.as_secs_f64() / t_engine.as_secs_f64().max(1e-9),
    );
}
