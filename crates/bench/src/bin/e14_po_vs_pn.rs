//! E14 — §6.1: the main theorem cannot be extended from PO down to PN.
//!
//! The paper's separating family: 3-regular 3-edge-colourable graphs. The
//! edge colouring gives a port numbering under which **all PN views are
//! identical** (any PN algorithm is constant — no non-trivial dominating
//! set), while in PO *every* orientation breaks symmetry (out-degrees of
//! odd-degree nodes cannot all agree), and the orientation-majority weak
//! colouring yields a non-trivial dominating set.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;

use locap_algos::weak_coloring::{is_weak_coloring, weak_two_coloring};
use locap_bench::{cells, hprintln, Table};
use locap_graph::{Orientation, PoGraph};
use locap_lifts::pn::{k4_edge_coloring, pn_view_census, ports_from_edge_coloring};
use locap_lifts::view_census;
use locap_problems::dominating_set;

fn main() {
    locap_bench::run("e14_po_vs_pn", "E14", "§6.1 — PO is strictly stronger than PN", body);
}

fn body() {
    let (g, col) = k4_edge_coloring();
    let ports = ports_from_edge_coloring(&g, &col).expect("K4 is 3-edge-colourable");

    hprintln!("\n[PN] K4 with colour-derived ports — view census by radius:\n");
    let mut t = Table::new(&["r", "distinct PN views", "⇒"]);
    for r in 0..=4usize {
        let census = pn_view_census(&g, &ports, r);
        t.row(&cells([
            &r,
            &census.len(),
            &if census.len() == 1 { "every PN algorithm is constant" } else { "" },
        ]));
    }
    t.print();
    hprintln!("\n  constant output ⇒ dominating set must be ∅ (infeasible) or all 4");
    hprintln!("  nodes (trivial): PN cannot produce a non-trivial dominating set.");

    hprintln!("\n[PO] the same ports with every one of the 2^6 orientations:\n");
    let edges = g.edge_vec();
    let mut min_classes = usize::MAX;
    let mut weak_successes = 0usize;
    let mut nontrivial_ds = 0usize;
    for mask in 0u32..(1 << edges.len()) {
        let orient = Orientation::from_fn(&g, |e| {
            let idx = edges.iter().position(|&x| x == e).expect("edge listed");
            mask & (1 << idx) != 0
        });
        let po = PoGraph::new(&g, ports.clone(), orient.clone()).expect("valid");
        min_classes = min_classes.min(view_census(po.digraph(), 1).len());
        if let Some(colors) = weak_two_coloring(&g, &orient, 4) {
            assert!(is_weak_coloring(&g, &colors));
            weak_successes += 1;
            let blacks: BTreeSet<usize> = g.nodes().filter(|&v| !colors[v]).collect();
            if dominating_set::feasible(&g, &blacks) && blacks.len() < g.node_count() {
                nontrivial_ds += 1;
            }
        }
    }
    let mut t =
        Table::new(&["orientations", "min view classes", "weak 2-colourings", "non-trivial DS"]);
    t.row(&cells([&64usize, &min_classes, &weak_successes, &nontrivial_ds]));
    t.print();

    hprintln!("\n  every orientation yields ≥ {min_classes} view classes: PO always breaks");
    hprintln!("  symmetry on odd-degree graphs (Σ(out−in) = 0 forces disagreement),");
    hprintln!("  and the weak-colouring dominating set is non-trivial whenever the");
    hprintln!("  colouring succeeds — the §6.1 separation, reproduced.");
}
