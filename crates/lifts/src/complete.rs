//! The complete tree `(T*, λ)` (paper §2.5, Fig. 5).
//!
//! `T*` is the radius-`r` tree of *all* reduced words over `L ∪ L⁻¹`: the
//! view of any label-complete L-digraph of girth > 2r + 1. Every concrete
//! view τ(T(G, v)) is (isomorphic to) a subtree of `T*` rooted at λ —
//! this is the set `W` of the paper, and a PO algorithm is a function
//! `B : W → Ω`.

use crate::{Letter, ViewNode, ViewTree, Word};

fn build_complete(labels: usize, last: Option<Letter>, depth: usize) -> ViewNode {
    if depth == 0 {
        return ViewNode { children: Vec::new() };
    }
    let mut children = Vec::new();
    for label in 0..labels {
        for letter in [Letter::pos(label), Letter::neg(label)] {
            if last != Some(letter.inv()) {
                children.push((letter, build_complete(labels, Some(letter), depth - 1)));
            }
        }
    }
    children.sort_by_key(|&(l, _)| l);
    ViewNode { children }
}

/// Builds the complete radius-`r` tree `(T*, λ)` over an alphabet of
/// `labels` labels.
///
/// ```
/// use locap_lifts::{complete_tree, t_star_size};
///
/// let t = complete_tree(2, 2); // Fig. 5: |L| = 2, r = 2
/// assert_eq!(t.size(), 17);
/// assert_eq!(t.size(), t_star_size(2, 2));
/// ```
pub fn complete_tree(labels: usize, r: usize) -> ViewTree {
    ViewTree { root: build_complete(labels, None, r), radius: r, alphabet: labels }
}

/// The number of vertices `t = |T*|` of the complete radius-`r` tree:
/// `1 + 2|L| · ((2|L|−1)^r − 1) / (2|L|−2)` for `|L| > 1`, `1 + 2r` for
/// `|L| = 1`.
pub fn t_star_size(labels: usize, r: usize) -> usize {
    if labels == 0 {
        return 1;
    }
    let k = 2 * labels;
    if k == 2 {
        return 1 + 2 * r;
    }
    // 1 + k + k(k-1) + k(k-1)^2 + … + k(k-1)^{r-1}
    let mut total = 1usize;
    let mut layer = k;
    for _ in 0..r {
        total += layer;
        layer *= k - 1;
    }
    total
}

/// Enumerates all reduced words of length at most `r` over `labels` labels,
/// in sorted order — the vertex set of `(T*, λ)`.
pub fn reduced_words(labels: usize, r: usize) -> Vec<Word> {
    complete_tree(labels, r).words()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_formula() {
        for labels in 1..4 {
            for r in 0..4 {
                let t = complete_tree(labels, r);
                assert_eq!(t.size(), t_star_size(labels, r), "L={labels}, r={r}");
                assert_eq!(reduced_words(labels, r).len(), t.size());
            }
        }
        // Fig. 5: |L| = 2, r = 2 has 1 + 4 + 12 = 17 vertices.
        assert_eq!(t_star_size(2, 2), 17);
        // |L| = 1: words are a^k and a^{-k}
        assert_eq!(t_star_size(1, 3), 7);
        assert_eq!(t_star_size(0, 5), 1);
    }

    #[test]
    fn root_has_2l_children_others_2l_minus_1() {
        let t = complete_tree(3, 2);
        assert_eq!(t.root.children.len(), 6);
        for (_, c) in &t.root.children {
            assert_eq!(c.children.len(), 5, "non-backtracking children");
        }
    }

    #[test]
    fn words_are_reduced_and_sorted() {
        let words = reduced_words(2, 2);
        assert_eq!(words.len(), 17);
        for w in &words {
            // reduced: re-reducing does not shrink
            let re = Word::from_letters(w.letters().iter().copied());
            assert_eq!(&re, w);
        }
        let mut sorted = words.clone();
        sorted.sort();
        assert_eq!(sorted, words);
        // λ is present
        assert!(words.iter().any(|w| w.is_empty()));
    }

    #[test]
    fn every_view_embeds_in_t_star() {
        use locap_graph::{gen, PoGraph};
        let g = gen::petersen();
        let po = PoGraph::canonical(&g);
        let labels = po.digraph().alphabet_size();
        let t_star = complete_tree(labels, 2);
        for v in 0..10 {
            let tv = crate::view(po.digraph(), v, 2);
            assert!(tv.embeds_in(&t_star), "view of {v} embeds in T*");
        }
    }

    #[test]
    fn complete_tree_is_its_own_view() {
        // The view of a label-complete high-girth graph equals T*: use the
        // directed 31-cycle at r = 3 (|L| = 1).
        let g = locap_graph::gen::directed_cycle(31);
        let t = crate::view(&g, 0, 3);
        assert_eq!(t, complete_tree(1, 3));
    }
}
