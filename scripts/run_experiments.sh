#!/usr/bin/env bash
# Regenerates the raw outputs recorded in EXPERIMENTS.md.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p target/experiments
for e in e01_models e02_separation e03_lifts e04_views e05_complete_tree \
         e06_toroidal e07_homogeneous e08_homlift e09_oi_to_po \
         e10_ramsey e11_eds e12_claims_table e13_growth e14_po_vs_pn; do
  echo "== $e =="
  cargo run --release -q -p locap-bench --bin "$e" | tee "target/experiments/$e.txt"
done
