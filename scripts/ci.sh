#!/usr/bin/env bash
# The full local CI gate: format check first (cheapest), then release
# build, tests, strict clippy. Run before every push; CI runs exactly
# this. Each step reports its wall-clock time so regressions in the gate
# itself are visible.
set -euo pipefail
cd "$(dirname "$0")/.."

# On GitHub Actions, per-step timings also land in the job summary as a
# markdown table, so gate-time regressions show up without log spelunking.
if [[ -n "${GITHUB_STEP_SUMMARY:-}" ]]; then
    {
        echo "### CI gate timings"
        echo ""
        echo "| step | seconds |"
        echo "| --- | ---: |"
    } >> "$GITHUB_STEP_SUMMARY"
fi

step() {
    local name=$1
    shift
    echo "==> $name"
    local t0=$SECONDS
    "$@"
    local dt=$((SECONDS - t0))
    echo "    [$name: ${dt}s]"
    if [[ -n "${GITHUB_STEP_SUMMARY:-}" ]]; then
        echo "| $name | $dt |" >> "$GITHUB_STEP_SUMMARY"
    fi
}

step "cargo fmt --check" cargo fmt --all -- --check
step "cargo build --release" cargo build --release --workspace
# debug-profile test pass: keeps debug_assert! checks and overflow
# checks in play, which the release pass below would skip
step "cargo test -q (debug)" cargo test -q --workspace
# the fault-injection harness re-runs in release: the panic-free
# guarantees must not depend on debug-only checks
step "failure injection (release)" \
    cargo test -q --release -p locap-core --test failure_injection
# serving-layer suites re-run in release: the protocol conformance,
# wire fuzzing, CLI goldens, daemon fault injection, and the
# concurrent load test (lost/duplicated responses would be a
# release-profile race, invisible to the debug pass above)
step "serve conformance (release)" cargo test -q --release -p locap-serve
# workspace static analysis in ratchet mode: fails on any violation not
# grandfathered (with a reason) by lint_baseline.json
step "locap-lint" cargo run --release -q -p locap-lint -- check
step "cargo clippy -D warnings" cargo clippy --workspace --all-targets -- -D warnings

echo "CI gate passed."
