//! Dominating-set upper bounds (paper §1.4: factor Δ′ + 1 is tight).
//!
//! * [`ds_all_nodes`] — output every node: a (Δ+1)-approximation on any
//!   graph without isolated nodes (OPT ≥ n/(Δ+1)); for **even** Δ this is
//!   exactly the tight factor Δ′ + 1 = Δ + 1.
//! * [`ds_weak_coloring`] — for odd-degree graphs: take the black class of
//!   a weak 2-colouring (every white node has a black neighbour, so blacks
//!   dominate). This improves on all-nodes whenever whites exist, and is a
//!   PO algorithm given the colouring. The exact Δ′+1 = Δ construction of
//!   Åstrand et al. 2010 is not reproduced (DESIGN.md substitution #4);
//!   experiments report measured factors.

use std::collections::BTreeSet;

use locap_graph::{Graph, NodeId, Orientation};

use crate::weak_coloring::weak_two_coloring;

/// The trivial dominating set: all nodes. A (Δ+1)-approximation whenever
/// the graph has no isolated node is *not* needed — it is always feasible,
/// and the ratio bound needs only OPT ≥ n/(Δ+1).
pub fn ds_all_nodes(g: &Graph) -> BTreeSet<NodeId> {
    g.nodes().collect()
}

/// Dominating set from a weak 2-colouring: the black colour class
/// (plus isolated nodes, which must dominate themselves). Returns `None`
/// when the weak-colouring heuristic fails (see [`crate::weak_coloring`]).
pub fn ds_weak_coloring(
    g: &Graph,
    orientation: &Orientation,
    fix_rounds: usize,
) -> Option<BTreeSet<NodeId>> {
    let colors = weak_two_coloring(g, orientation, fix_rounds)?;
    Some(g.nodes().filter(|&v| !colors[v] /* black */ || g.degree(v) == 0).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use locap_graph::{gen, random};
    use locap_problems::dominating_set;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_nodes_is_feasible_within_delta_plus_1() {
        for g in [gen::cycle(6), gen::petersen(), gen::complete(5), gen::hypercube(3)] {
            let ds = ds_all_nodes(&g);
            assert!(dominating_set::feasible(&g, &ds));
            let opt = dominating_set::opt_value(&g);
            assert!(ds.len() <= (g.max_degree() + 1) * opt);
        }
    }

    #[test]
    fn weak_coloring_ds_feasible_and_smaller() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut improved = 0;
        for _ in 0..20 {
            let g = random::random_regular(12, 3, 1000, &mut rng).unwrap();
            let o = random::random_orientation(&g, &mut rng);
            if let Some(ds) = ds_weak_coloring(&g, &o, 4) {
                assert!(dominating_set::feasible(&g, &ds));
                if ds.len() < g.node_count() {
                    improved += 1;
                }
            }
        }
        assert!(improved >= 10, "weak-colouring DS should usually beat all-nodes");
    }

    #[test]
    fn isolated_nodes_included() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1).unwrap();
        // nodes 2, 3 isolated; all-nodes still feasible
        let ds = ds_all_nodes(&g);
        assert!(dominating_set::feasible(&g, &ds));
    }
}
