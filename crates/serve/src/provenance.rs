//! Provenance sidecars: every artifact the serving layer writes is
//! accompanied by `<artifact>.provenance.json` recording how it was
//! produced.
//!
//! # Sidecar schema (version 1)
//!
//! ```json
//! {"schema": 1,
//!  "tool": "locapd",
//!  "git_rev": "abc123… or null",
//!  "pipeline": "eds-lower",
//!  "params": {"n": 9, "delta_prime": 2},
//!  "elapsed_ms": 41,
//!  "created_unix_ms": 1765432100000,
//!  "counters": {"census/classes": 1, "…": 0},
//!  "spans": {"total": 1, "…": 0}}
//! ```
//!
//! * `git_rev` — the commit the serving binary ran from: the
//!   `LOCAP_GIT_REV` environment variable when set, else resolved from
//!   the repository's `.git` (walking up from the working directory);
//!   `null` when neither is available.
//! * `counters` — the obs-counter *delta* attributable to this run
//!   ([`locap_obs::Snapshot::delta`]): exact for the CLI and
//!   single-worker daemons, a window over concurrent work otherwise.
//! * `spans` — span hit counts from the same delta.

use std::path::{Path, PathBuf};

use locap_obs::json::Json;
use locap_obs::Snapshot;

/// The sidecar schema version this module writes.
pub const SCHEMA: u64 = 1;

/// The commit the running binary was built from, best-effort:
/// `LOCAP_GIT_REV` when set, else the repository HEAD found by walking
/// up from the current directory. `None` outside a git checkout.
pub fn git_rev() -> Option<String> {
    if let Ok(rev) = std::env::var("LOCAP_GIT_REV") {
        let rev = rev.trim().to_string();
        if !rev.is_empty() {
            return Some(rev);
        }
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let git = dir.join(".git");
        if git.is_dir() {
            return resolve_head(&git);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn resolve_head(git: &Path) -> Option<String> {
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    if let Some(refname) = head.strip_prefix("ref: ") {
        let refname = refname.trim();
        if let Ok(rev) = std::fs::read_to_string(git.join(refname)) {
            return Some(rev.trim().to_string());
        }
        // fall back to packed-refs
        let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
        for line in packed.lines() {
            let line = line.trim();
            if line.starts_with('#') || line.starts_with('^') {
                continue;
            }
            if let Some((rev, name)) = line.split_once(' ') {
                if name.trim() == refname {
                    return Some(rev.trim().to_string());
                }
            }
        }
        return None;
    }
    (!head.is_empty()).then(|| head.to_string())
}

/// Milliseconds since the Unix epoch. The one sanctioned wall-clock
/// read in the serving layer (allowlisted by the L2 clock lint):
/// provenance records *when* an artifact was made; nothing downstream
/// computes with the value.
fn created_unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Assembles a version-1 sidecar document.
pub fn sidecar(
    tool: &str,
    pipeline: &str,
    params: Json,
    elapsed_ms: u64,
    obs_delta: &Snapshot,
) -> Json {
    let counters = obs_delta
        .counters
        .iter()
        .map(|(k, &v)| (k.clone(), Json::Num(v as f64)))
        .collect();
    let spans = obs_delta
        .spans
        .iter()
        .map(|(k, s)| (k.clone(), Json::Num(s.count as f64)))
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::Num(SCHEMA as f64)),
        ("tool".into(), Json::Str(tool.into())),
        ("git_rev".into(), git_rev().map(Json::Str).unwrap_or(Json::Null)),
        ("pipeline".into(), Json::Str(pipeline.into())),
        ("params".into(), params),
        ("elapsed_ms".into(), Json::Num(elapsed_ms as f64)),
        ("created_unix_ms".into(), Json::Num(created_unix_ms() as f64)),
        ("counters".into(), Json::Obj(counters)),
        ("spans".into(), Json::Obj(spans)),
    ])
}

/// Writes `artifact` (single JSON line) and its sidecar
/// `<artifact>.provenance.json` next to it.
///
/// # Errors
///
/// Propagates filesystem failures (missing directory, permissions).
pub fn write_artifact(
    path: &Path,
    artifact: &Json,
    sidecar_doc: &Json,
) -> std::io::Result<PathBuf> {
    std::fs::write(path, format!("{artifact}\n"))?;
    let sidecar_path = sidecar_path_for(path);
    std::fs::write(&sidecar_path, format!("{sidecar_doc}\n"))?;
    Ok(sidecar_path)
}

/// The sidecar path for an artifact: `<artifact>.provenance.json`.
pub fn sidecar_path_for(artifact: &Path) -> PathBuf {
    let mut name = artifact.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".provenance.json");
    artifact.with_file_name(name)
}

/// A filesystem-safe artifact stem for a request id (alphanumerics,
/// `-`, `_` and `.` kept; everything else mapped to `-`).
///
/// Sanitization is lossy — `"a/b"` and `"a-b"` map to the same safe
/// text — so whenever it changes the id, a short content hash of the
/// *original* id is appended: distinct ids always get distinct stems
/// and never overwrite each other's artifacts. Ids that are already
/// safe keep their plain stem.
pub fn artifact_stem(pipeline: &str, id: &Json) -> String {
    let raw = match id {
        Json::Str(s) => s.clone(),
        other => other.to_string(),
    };
    let safe: String = raw
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') { c } else { '-' })
        .collect();
    if safe == raw {
        format!("{pipeline}-{safe}")
    } else {
        let tag = locap_store::StoreKey::of_bytes(raw.as_bytes()).short_hex();
        format!("{pipeline}-{safe}-{tag}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sidecar_has_the_documented_fields() {
        let reg = locap_obs::Registry::new();
        reg.counter("x/hits").add(3);
        reg.record_span_ns("total", 100);
        let delta = reg.snapshot().delta(&Snapshot::default());
        let doc = sidecar("locap", "census", Json::Obj(vec![]), 7, &delta);
        assert_eq!(doc.get("schema").and_then(Json::as_u64), Some(SCHEMA));
        assert_eq!(doc.get("tool").and_then(Json::as_str), Some("locap"));
        assert_eq!(doc.get("elapsed_ms").and_then(Json::as_u64), Some(7));
        let counters = doc.get("counters").expect("counters present");
        assert_eq!(counters.get("x/hits").and_then(Json::as_u64), Some(3));
        let spans = doc.get("spans").expect("spans present");
        assert_eq!(spans.get("total").and_then(Json::as_u64), Some(1));
        assert!(doc.get("created_unix_ms").and_then(Json::as_u64).is_some());
    }

    #[test]
    fn artifact_stems_are_filesystem_safe() {
        assert_eq!(artifact_stem("census", &Json::Num(7.0)), "census-7");
        assert_eq!(artifact_stem("ramsey", &Json::Bool(true)), "ramsey-true");
        // a sanitized id carries a disambiguating hash of the original
        let sanitized = artifact_stem("census", &Json::Str("a/b c".into()));
        assert!(sanitized.starts_with("census-a-b-c-"), "got {sanitized}");
        assert!(sanitized.chars().all(|c| c.is_ascii_alphanumeric() || "-_.".contains(c)));
    }

    #[test]
    fn distinct_ids_never_collide_on_one_stem() {
        // "a/b" sanitizes onto the already-safe "a-b": the hash suffix
        // keeps them apart (the pre-fix behaviour overwrote artifacts)
        let slashed = artifact_stem("census", &Json::Str("a/b".into()));
        let dashed = artifact_stem("census", &Json::Str("a-b".into()));
        assert_ne!(slashed, dashed);
        assert_eq!(dashed, "census-a-b", "safe ids keep their plain stem");
        // two distinct ids that sanitize identically also stay apart
        let spaced = artifact_stem("census", &Json::Str("a b".into()));
        assert_ne!(slashed, spaced);
        // equal ids still map to equal stems (artifact overwrite on
        // re-request is intentional)
        assert_eq!(slashed, artifact_stem("census", &Json::Str("a/b".into())));
    }

    #[test]
    fn sidecar_path_appends_suffix() {
        let p = sidecar_path_for(Path::new("/tmp/out/census-7.json"));
        assert_eq!(p, Path::new("/tmp/out/census-7.json.provenance.json"));
    }

    #[test]
    fn git_rev_resolves_in_this_checkout() {
        // The repo under test is a git checkout; LOCAP_GIT_REV also works.
        std::env::set_var("LOCAP_GIT_REV", "deadbeef");
        assert_eq!(git_rev().as_deref(), Some("deadbeef"));
        std::env::remove_var("LOCAP_GIT_REV");
    }
}
