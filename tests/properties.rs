//! Property-based cross-crate tests (proptest): invariants that must hold
//! for arbitrary instances, not just the curated suite.

use proptest::prelude::*;

use locap_algos::double_cover::eds_double_cover;
use locap_algos::edge_packing::{is_maximal_packing, maximal_edge_packing};
use locap_graph::{gen, random, Graph, PoGraph, PortNumbering};
use locap_lifts::{bipartite_double_cover, random_lift, view};
use locap_problems::{edge_dominating_set, matching, vertex_cover};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_graph() -> impl Strategy<Value = Graph> {
    // random graphs on 4..12 nodes with edge probability ~1/2, no isolated
    // constraint (handled per-property)
    (4usize..12, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        loop {
            let mut g = Graph::new(n);
            for u in 0..n {
                for v in (u + 1)..n {
                    if rand::Rng::gen_bool(&mut rng, 0.45) {
                        g.add_edge(u, v).unwrap();
                    }
                }
            }
            if g.edge_count() > 0 {
                return g;
            }
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Maximal edge packings exist and certify a vertex cover on any graph.
    #[test]
    fn prop_edge_packing_maximal_and_covering(g in arb_graph()) {
        let p = maximal_edge_packing(&g).unwrap();
        prop_assert!(is_maximal_packing(&g, &p.weights));
        prop_assert!(vertex_cover::feasible(&g, &p.saturated));
        prop_assert!(p.saturated.len() <= 2 * vertex_cover::opt_value(&g));
    }

    /// The double-cover EDS algorithm is always feasible.
    #[test]
    fn prop_eds_double_cover_feasible(g in arb_graph()) {
        let ports = PortNumbering::sorted(&g);
        let d = eds_double_cover(&g, &ports).unwrap();
        prop_assert!(edge_dominating_set::feasible(&g, &d));
    }

    /// The bipartite double cover doubles nodes and edges and is bipartite.
    #[test]
    fn prop_double_cover_structure(g in arb_graph()) {
        let h = bipartite_double_cover(&g);
        let n = g.node_count();
        prop_assert_eq!(h.node_count(), 2 * n);
        prop_assert_eq!(h.edge_count(), 2 * g.edge_count());
        for e in h.edges() {
            prop_assert!((e.u < n) != (e.v < n), "edges cross sides");
        }
    }

    /// Views are invariant under random lifts of the canonical PO
    /// structure, for any base graph.
    #[test]
    fn prop_views_lift_invariant(g in arb_graph(), l in 2usize..4, seed in any::<u64>()) {
        let d = PoGraph::canonical(&g).digraph().clone();
        let mut rng = StdRng::seed_from_u64(seed);
        let (h, phi) = random_lift(&d, l, &mut rng);
        phi.verify(&h, &d).unwrap();
        for v in 0..h.node_count() {
            prop_assert_eq!(view(&h, v, 2), view(&d, phi.image(v), 2));
        }
    }

    /// Exact solvers are consistent with each other: Gallai and König-style
    /// inequalities hold on arbitrary instances.
    #[test]
    fn prop_solver_inequalities(g in arb_graph()) {
        let tau = vertex_cover::opt_value(&g);
        let nu = matching::opt_value(&g);
        let gamma_e = edge_dominating_set::opt_value(&g);
        // ν ≤ τ ≤ 2ν (weak duality + matching-based cover)
        prop_assert!(nu <= tau);
        prop_assert!(tau <= 2 * nu);
        // γ_e ≤ ν' for any maximal matching; and τ ≤ 2 γ_e... the latter
        // holds because endpoints of an EDS form a vertex cover.
        prop_assert!(tau <= 2 * gamma_e);
        // γ_e ≤ ν when ν > 0 fails in general; but γ_e ≤ maximal matching:
        let mm = matching::greedy_maximal(&g).len();
        prop_assert!(gamma_e <= mm);
    }

    /// Exact minimum EDS never exceeds twice any maximal matching EDS.
    #[test]
    fn prop_eds_vs_matching(g in arb_graph()) {
        let mm = matching::greedy_maximal(&g);
        prop_assert!(edge_dominating_set::feasible(&g, &mm));
        prop_assert!(mm.len() <= 2 * edge_dominating_set::opt_value(&g));
    }
}

/// Random regular instances: the full PO stack holds for every seed.
#[test]
fn regular_graph_stack_deterministic_seeds() {
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random::random_regular(10, 3, 1000, &mut rng).unwrap();
        let po = PoGraph::canonical(&g);
        // every node's view embeds into T*
        let t_star = locap_lifts::complete_tree(po.digraph().alphabet_size(), 2);
        for v in 0..10 {
            assert!(view(po.digraph(), v, 2).embeds_in(&t_star), "seed {seed}");
        }
    }
}

/// Degenerate instances behave: single edge, star, disjoint edges.
#[test]
fn degenerate_instances() {
    let single = gen::path(2);
    let p = maximal_edge_packing(&single).unwrap();
    assert_eq!(p.saturated.len(), 2);

    let star = gen::star(5);
    let ports = PortNumbering::sorted(&star);
    let d = eds_double_cover(&star, &ports).unwrap();
    assert!(edge_dominating_set::feasible(&star, &d));
    assert_eq!(edge_dominating_set::opt_value(&star), 1);

    let mut disjoint = Graph::new(6);
    disjoint.add_edge(0, 1).unwrap();
    disjoint.add_edge(2, 3).unwrap();
    disjoint.add_edge(4, 5).unwrap();
    assert_eq!(edge_dominating_set::opt_value(&disjoint), 3);
    assert_eq!(vertex_cover::opt_value(&disjoint), 3);
    assert_eq!(matching::opt_value(&disjoint), 3);
}

/// A faulty-input model for the fallible execution core: whatever
/// combination of missing/truncated ids, inputs, and orientation a
/// caller supplies, `run_sync` must return `Ok` or a typed `RunError` —
/// never panic — and the id/oi engines must do the same for short
/// slices.
#[derive(Debug, Clone)]
struct FaultPlan {
    /// 0 = full ids, 1 = no ids, 2 = truncated ids
    ids: u8,
    /// 0 = no orientation, 1 = random orientation
    orientation: u8,
    /// 0 = no inputs, 1 = full inputs, 2 = truncated inputs
    inputs: u8,
    seed: u64,
}

fn arb_fault_plan() -> impl Strategy<Value = FaultPlan> {
    (0u8..3, 0u8..2, 0u8..3, any::<u64>()).prop_map(|(ids, orientation, inputs, seed)| FaultPlan {
        ids,
        orientation,
        inputs,
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `run_sync` on random bounded-degree graphs under every fault plan:
    /// no panic, and short slices always surface as typed errors.
    #[test]
    fn prop_run_sync_never_panics(g in arb_graph(), plan in arb_fault_plan()) {
        use locap_models::sim::{run_sync_with_inputs, GossipIds};
        use locap_models::RunError;

        let mut rng = StdRng::seed_from_u64(plan.seed);
        let n = g.node_count();
        let ports = random::random_ports(&g, &mut rng);
        let full_ids = random::random_ids(n, 10_000, &mut rng);
        let ids: Option<Vec<u64>> = match plan.ids {
            0 => Some(full_ids.clone()),
            1 => None,
            _ => Some(full_ids[..n / 2].to_vec()),
        };
        let orientation = match plan.orientation {
            0 => None,
            _ => Some(random::random_orientation(&g, &mut rng)),
        };
        let inputs: Option<Vec<u64>> = match plan.inputs {
            0 => None,
            1 => Some(vec![1; n]),
            _ => Some(vec![1; n.saturating_sub(1)]),
        };
        let res = run_sync_with_inputs(
            &g,
            &ports,
            ids.as_deref(),
            orientation.as_ref(),
            inputs.as_deref(),
            &GossipIds { rounds: 2 },
            4,
        );
        match (&res, plan.ids) {
            (Err(RunError::MissingIds), 1) => {}
            (Err(RunError::InputLengthMismatch { .. }), _) => {
                prop_assert!(plan.ids == 2 || plan.inputs == 2);
            }
            (Ok(out), 0) => prop_assert_eq!(out.states.len(), n),
            (r, p) => prop_assert!(false, "unexpected outcome {:?} for ids plan {}", r.is_ok(), p),
        }
    }

    /// The id/oi engines on random graphs with randomly truncated
    /// slices: `Ok` on full-length slices, typed error otherwise.
    #[test]
    fn prop_engines_total_on_short_slices(g in arb_graph(), cut in 0usize..4, seed in any::<u64>()) {
        use locap_graph::canon::{IdNbhd, OrderedNbhd};
        use locap_models::{run, IdVertexAlgorithm, OiVertexAlgorithm, RunError};

        struct Max;
        impl IdVertexAlgorithm for Max {
            fn radius(&self) -> usize { 1 }
            fn evaluate(&self, t: &IdNbhd) -> bool { t.root as usize == t.ids.len() - 1 }
        }
        struct Min;
        impl OiVertexAlgorithm for Min {
            fn radius(&self) -> usize { 1 }
            fn evaluate(&self, t: &OrderedNbhd) -> bool { t.root == 0 }
        }

        let mut rng = StdRng::seed_from_u64(seed);
        let n = g.node_count();
        let ids = random::random_ids(n, 10_000, &mut rng);
        let rank = random::random_rank(n, &mut rng);
        let keep = n.saturating_sub(cut);

        let id_res = run::id_vertex(&g, &ids[..keep], &Max);
        let oi_res = run::oi_vertex(&g, &rank[..keep], &Min);
        if cut == 0 {
            prop_assert_eq!(id_res.unwrap().len(), n);
            prop_assert_eq!(oi_res.unwrap().len(), n);
        } else {
            prop_assert!(matches!(id_res, Err(RunError::InputLengthMismatch { .. })));
            prop_assert!(matches!(oi_res, Err(RunError::InputLengthMismatch { .. })));
        }
    }
}
