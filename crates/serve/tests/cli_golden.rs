//! Golden-output tests for the `locap` CLI.
//!
//! Every pipeline subcommand is locked two ways:
//!
//! * **human output** — byte-for-byte against
//!   `tests/golden/<name>.txt` (the CLI prints no timings, so the
//!   output is fully deterministic);
//! * **`OBS_JSON=1` output** — exactly one stdout line of schema-valid
//!   JSON (the same `validate_bench_schema` contract as
//!   `crates/bench/tests/obs_json.rs`), with the *metric-name set*
//!   locked against `tests/golden/<name>.metrics.txt` (values are
//!   timings and may vary).
//!
//! Regenerate snapshots with `UPDATE_GOLDEN=1 cargo test -p locap-serve
//! --test cli_golden` and review the diff like any other code change.

use std::path::PathBuf;
use std::process::Command;

use locap_obs::json::Json;

/// The locked subcommand matrix: (snapshot name, CLI args).
const CASES: &[(&str, &[&str])] = &[
    ("pipelines", &["pipelines"]),
    ("eds_lower", &["eds-lower", "--n", "9", "--delta-prime", "2"]),
    ("homogeneous", &["homogeneous", "--k", "1", "--r", "1", "--m", "6"]),
    ("hom_lift", &["hom-lift", "--cycle", "3", "--m", "6"]),
    ("oi_to_po", &["oi-to-po", "--algo", "vc-non-min", "--cycle", "9", "--m", "6"]),
    ("ramsey", &["ramsey", "--algo", "local-max", "--universe", "20", "--r", "1", "--m", "5"]),
    ("transfer", &["transfer", "--algo", "vc-non-min", "--cycle", "9", "--m", "6"]),
    ("census", &["census", "--family", "directed-cycle", "--n", "12", "--radius", "2"]),
];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

fn locap(args: &[&str], obs_json: bool) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_locap"));
    cmd.args(args).env_remove("OBS_JSON").env_remove("OBS_TRACE");
    if obs_json {
        cmd.env("OBS_JSON", "1");
    }
    cmd.output().unwrap_or_else(|e| panic!("spawn locap {args:?}: {e}"))
}

#[track_caller]
fn check_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, actual).expect("write golden snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name}: output drifted from its snapshot; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn human_output_matches_golden_snapshots() {
    for (name, args) in CASES {
        let out = locap(args, false);
        assert!(
            out.status.success(),
            "{name}: exit {} — {}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8(out.stdout).unwrap_or_else(|e| panic!("{name}: utf8: {e}"));
        check_golden(&format!("{name}.txt"), &stdout);
    }
}

#[test]
fn obs_json_output_is_schema_valid_with_locked_metric_names() {
    for (name, args) in CASES {
        if *name == "pipelines" {
            continue; // a listing, not a pipeline run — no metrics line
        }
        let out = locap(args, true);
        assert!(
            out.status.success(),
            "{name}: exit {} — {}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8(out.stdout).unwrap_or_else(|e| panic!("{name}: utf8: {e}"));
        let lines: Vec<&str> = stdout.lines().collect();
        assert_eq!(
            lines.len(),
            1,
            "{name}: OBS_JSON=1 must print exactly one line, got {stdout:?}"
        );
        let doc = Json::parse(lines[0]).unwrap_or_else(|e| panic!("{name}: JSON parse: {e}"));
        locap_obs::validate_bench_schema(&doc)
            .unwrap_or_else(|e| panic!("{name}: schema validation: {e}"));
        assert_eq!(doc.get("source").and_then(Json::as_str), Some("locap"), "{name}: source tag");
        let results = doc.get("results").and_then(Json::as_array).expect("results array");
        let mut metric_names: Vec<&str> =
            results.iter().filter_map(|r| r.get("name").and_then(Json::as_str)).collect();
        assert!(metric_names.contains(&"total"), "{name}: missing the total span row");
        metric_names.sort_unstable();
        let mut listing: String = metric_names.join("\n");
        listing.push('\n');
        check_golden(&format!("{name}.metrics.txt"), &listing);
    }
}

#[test]
fn usage_errors_exit_2_without_polluting_stdout() {
    for args in [&["warp-drive"][..], &[][..], &["census", "--family"][..]] {
        let out = locap(args, false);
        assert_eq!(out.status.code(), Some(2), "usage errors exit 2 for {args:?}");
        assert!(out.stdout.is_empty(), "usage errors keep stdout clean for {args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("usage:"), "stderr shows usage for {args:?}: {stderr}");
    }
}

#[test]
fn pipeline_failures_exit_1_with_a_typed_kind_on_stderr() {
    // delta_prime=2 needs n divisible by 3: a clean in-pipeline failure.
    let out = locap(&["eds-lower", "--n", "10"], false);
    assert_eq!(out.status.code(), Some(1), "pipeline errors exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("core/") || stderr.contains("run/") || stderr.contains("truncated/"),
        "stderr names the error kind: {stderr}"
    );
}

/// `--out` writes the artifact and its provenance sidecar.
#[test]
fn out_flag_writes_artifact_and_sidecar() {
    let dir = std::env::temp_dir().join(format!("locap-cli-golden-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let artifact = dir.join("census.json");
    let out = locap(
        &[
            "census",
            "--family",
            "directed-cycle",
            "--n",
            "12",
            "--out",
            artifact.to_str().expect("utf8 temp path"),
        ],
        false,
    );
    assert!(out.status.success(), "exit {}", out.status);
    let doc = Json::parse(std::fs::read_to_string(&artifact).expect("artifact written").trim())
        .expect("artifact is JSON");
    assert_eq!(doc.get("nodes").and_then(Json::as_u64), Some(12));
    let sidecar_path = dir.join("census.json.provenance.json");
    let sidecar =
        Json::parse(std::fs::read_to_string(&sidecar_path).expect("sidecar written").trim())
            .expect("sidecar is JSON");
    assert_eq!(sidecar.get("tool").and_then(Json::as_str), Some("locap"));
    assert_eq!(sidecar.get("pipeline").and_then(Json::as_str), Some("census"));
    let _ = std::fs::remove_dir_all(&dir);
}
