//! Bench: `locapd` request round-trip and a deterministic concurrent
//! load scenario (8 clients × 25 pipelined census requests per
//! iteration, every response matched to its request id exactly once).
//!
//! The load scenario is the bench_gate face of the conformance suite's
//! load test: the gate tracks its latency, the test asserts its
//! correctness properties.

#![forbid(unsafe_code)]

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use locap_serve::daemon::{Daemon, DaemonConfig};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 25;

fn census_request(id: usize) -> String {
    format!(
        "{{\"id\":{id},\"pipeline\":\"census\",\"params\":{{\"family\":\"directed-cycle\",\"n\":12}}}}\n"
    )
}

fn run_client(addr: SocketAddr, client: usize) {
    let stream = TcpStream::connect(addr).expect("connect to in-process daemon");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut stream = stream;
    let mut batch = String::new();
    for i in 0..REQUESTS_PER_CLIENT {
        batch.push_str(&census_request(client * REQUESTS_PER_CLIENT + i));
    }
    stream.write_all(batch.as_bytes()).expect("write batch");
    let mut seen = [false; REQUESTS_PER_CLIENT];
    let mut line = String::new();
    for _ in 0..REQUESTS_PER_CLIENT {
        line.clear();
        reader.read_line(&mut line).expect("read response");
        assert!(line.contains("\"ok\":true"), "unexpected response: {line}");
        let id: usize = line
            .split("\"id\":")
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .and_then(|tok| tok.trim().parse().ok())
            .expect("response carries a numeric id");
        let slot = id - client * REQUESTS_PER_CLIENT;
        assert!(!seen[slot], "duplicate response for id {id}");
        seen[slot] = true;
    }
    assert!(seen.iter().all(|&s| s), "lost responses for client {client}");
}

fn bench_serve(c: &mut Criterion) {
    let config = DaemonConfig {
        workers: 2,
        queue_depth: CLIENTS * REQUESTS_PER_CLIENT,
        default_deadline: Some(Duration::from_secs(30)),
        ..DaemonConfig::default()
    };
    let daemon = Daemon::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = daemon.local_addr();
    let handle = daemon.handle();
    let server = std::thread::spawn(move || daemon.run());

    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    group.bench_function("census_roundtrip", |b| {
        let stream = TcpStream::connect(addr).expect("connect to in-process daemon");
        let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
        let mut stream = stream;
        let mut line = String::new();
        b.iter(|| {
            stream.write_all(census_request(0).as_bytes()).expect("write request");
            line.clear();
            reader.read_line(&mut line).expect("read response");
            assert!(line.contains("\"ok\":true"), "unexpected response: {line}");
        })
    });
    group.bench_function("load_8x25", |b| {
        b.iter(|| {
            let clients: Vec<_> = (0..CLIENTS)
                .map(|client| std::thread::spawn(move || run_client(addr, client)))
                .collect();
            for h in clients {
                h.join().expect("client thread");
            }
        })
    });
    group.finish();

    handle.shutdown();
    server.join().expect("daemon thread").expect("daemon run");
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
