//! Covering maps and lift constructions (paper §1.6, Fig. 3; Prop. 4.5).

use rand::seq::SliceRandom;
use rand::Rng;

use locap_graph::{Graph, LDigraph, NodeId};

use crate::LiftError;

/// A candidate covering map `ϕ : V(H) → V(G)` between L-digraphs.
///
/// A covering map is an onto, label-preserving graph homomorphism that is a
/// *local bijection*: at every `v ∈ V(H)` and every label `ℓ`, `v` has an
/// outgoing (incoming) edge labelled `ℓ` iff `ϕ(v)` does, and the edges
/// correspond. When ϕ is a covering map, `H` is a **lift** of `G` and PO
/// algorithms cannot distinguish `v` from `ϕ(v)` (their views coincide).
///
/// # Examples
///
/// ```
/// use locap_graph::gen;
/// use locap_lifts::{trivial_lift, CoveringMap};
///
/// let g = gen::directed_cycle(3);
/// let (h, phi) = trivial_lift(&g, 2);
/// phi.verify(&h, &g).unwrap();
/// assert_eq!(phi.fibre(0, &g), vec![0, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoveringMap {
    map: Vec<NodeId>,
}

impl CoveringMap {
    /// Wraps an explicit image vector (`map[v]` = ϕ(v)); validate with
    /// [`CoveringMap::verify`].
    pub fn new(map: Vec<NodeId>) -> CoveringMap {
        CoveringMap { map }
    }

    /// The image ϕ(v).
    pub fn image(&self, v: NodeId) -> NodeId {
        self.map[v]
    }

    /// The image vector.
    pub fn as_slice(&self) -> &[NodeId] {
        &self.map
    }

    /// The fibre ϕ⁻¹(u) for `u ∈ V(G)`, sorted.
    pub fn fibre(&self, u: NodeId, _g: &LDigraph) -> Vec<NodeId> {
        (0..self.map.len()).filter(|&v| self.map[v] == u).collect()
    }

    /// Checks that this map is a covering map from `h` onto `g`.
    ///
    /// # Errors
    ///
    /// Returns the first defect found (wrong domain, out-of-range image,
    /// not onto, or not a local bijection at some node/label).
    pub fn verify(&self, h: &LDigraph, g: &LDigraph) -> Result<(), LiftError> {
        if self.map.len() != h.node_count() {
            return Err(LiftError::WrongDomain {
                expected: h.node_count(),
                actual: self.map.len(),
            });
        }
        let mut covered = vec![false; g.node_count()];
        for (v, &img) in self.map.iter().enumerate() {
            if img >= g.node_count() {
                return Err(LiftError::ImageOutOfRange { node: v });
            }
            covered[img] = true;
        }
        if let Some(u) = covered.iter().position(|&c| !c) {
            return Err(LiftError::NotOnto { uncovered: u });
        }
        if h.alphabet_size() != g.alphabet_size() {
            return Err(LiftError::BadParameters {
                reason: format!(
                    "alphabet mismatch: {} vs {}",
                    h.alphabet_size(),
                    g.alphabet_size()
                ),
            });
        }
        for v in 0..h.node_count() {
            let img = self.map[v];
            for label in 0..h.alphabet_size() {
                match (h.out_neighbor(v, label), g.out_neighbor(img, label)) {
                    (None, None) => {}
                    (Some(hv), Some(gu)) => {
                        if self.map[hv] != gu {
                            return Err(LiftError::NotLocalBijection {
                                node: v,
                                label,
                                detail: format!(
                                    "out-edge maps to {} but ϕ(target) = {}",
                                    gu, self.map[hv]
                                ),
                            });
                        }
                    }
                    (Some(_), None) => {
                        return Err(LiftError::NotLocalBijection {
                            node: v,
                            label,
                            detail: "extra outgoing edge in H".into(),
                        })
                    }
                    (None, Some(_)) => {
                        return Err(LiftError::NotLocalBijection {
                            node: v,
                            label,
                            detail: "missing outgoing edge in H".into(),
                        })
                    }
                }
                match (h.in_neighbor(v, label), g.in_neighbor(img, label)) {
                    (None, None) => {}
                    (Some(hv), Some(gu)) => {
                        if self.map[hv] != gu {
                            return Err(LiftError::NotLocalBijection {
                                node: v,
                                label,
                                detail: format!(
                                    "in-edge maps to {} but ϕ(source) = {}",
                                    gu, self.map[hv]
                                ),
                            });
                        }
                    }
                    (Some(_), None) => {
                        return Err(LiftError::NotLocalBijection {
                            node: v,
                            label,
                            detail: "extra incoming edge in H".into(),
                        })
                    }
                    (None, Some(_)) => {
                        return Err(LiftError::NotLocalBijection {
                            node: v,
                            label,
                            detail: "missing incoming edge in H".into(),
                        })
                    }
                }
            }
        }
        Ok(())
    }

    /// If every fibre has the same size `l`, returns `Some(l)` — the map is
    /// then an `l`-lift.
    pub fn uniform_fibre_size(&self, g: &LDigraph) -> Option<usize> {
        let mut sizes = vec![0usize; g.node_count()];
        for &img in &self.map {
            sizes[img] += 1;
        }
        let l = *sizes.first()?;
        sizes.iter().all(|&s| s == l).then_some(l)
    }
}

/// The `l`-fold disjoint-copy lift: `H = l · G`, with copy `c` of node `v`
/// indexed `c * n + v` and ϕ(x) = x mod n.
///
/// # Panics
///
/// Panics if `l == 0`.
pub fn trivial_lift(g: &LDigraph, l: usize) -> (LDigraph, CoveringMap) {
    assert!(l > 0, "lift degree must be positive");
    let n = g.node_count();
    let mut h = LDigraph::new(n * l, g.alphabet_size());
    for c in 0..l {
        for e in g.edges() {
            h.add_edge(c * n + e.from, c * n + e.to, e.label)
                .expect("copies of a proper labelling are proper");
        }
    }
    let map = (0..n * l).map(|x| x % n).collect();
    (h, CoveringMap::new(map))
}

/// A uniformly random `l`-lift: for each edge of `G` an independent random
/// permutation π ∈ S_l matches the fibres, giving edges
/// `(c, v) --ℓ--> (π(c), u)`.
///
/// # Panics
///
/// Panics if `l == 0`.
pub fn random_lift<R: Rng>(g: &LDigraph, l: usize, rng: &mut R) -> (LDigraph, CoveringMap) {
    assert!(l > 0, "lift degree must be positive");
    let n = g.node_count();
    let mut h = LDigraph::new(n * l, g.alphabet_size());
    for e in g.edges() {
        let mut perm: Vec<usize> = (0..l).collect();
        perm.shuffle(rng);
        for (c, &p) in perm.iter().enumerate() {
            h.add_edge(c * n + e.from, p * n + e.to, e.label)
                .expect("permutation matching preserves properness");
        }
    }
    let map = (0..n * l).map(|x| x % n).collect();
    (h, CoveringMap::new(map))
}

/// Finds a directed edge whose removal keeps the underlying graph
/// connected (i.e. an edge lying on a cycle), if one exists. Such an edge
/// exists precisely when the (connected) graph is not a tree — the
/// hypothesis of the connected main theorem (Thm 1.4, Remark 1.5).
pub fn find_redundant_edge(g: &LDigraph) -> Option<locap_graph::DirEdge> {
    let und = g.underlying_simple();
    for e in g.edges() {
        let mut trimmed = g.clone();
        trimmed.remove_edge(e.from, e.to, e.label);
        let tu = trimmed.underlying_simple();
        if tu.is_connected() && und.is_connected() {
            return Some(e);
        }
    }
    None
}

/// The connected `l`-lift of Prop. 4.5: take `l` disjoint copies of `G` and
/// rewire the fibre of one redundant edge `e = (v, u)` by the cyclic
/// permutation `v_i -> u_{i+1 (mod l)}`. If `G` is connected and not a
/// tree, the result is a *connected* `l`-lift.
///
/// # Errors
///
/// Fails if `l == 0` or no redundant edge exists (G is a tree or
/// disconnected).
pub fn connect_copies(g: &LDigraph, l: usize) -> Result<(LDigraph, CoveringMap), LiftError> {
    if l == 0 {
        return Err(LiftError::BadParameters { reason: "lift degree must be positive".into() });
    }
    let e = find_redundant_edge(g).ok_or_else(|| LiftError::BadParameters {
        reason: "graph has no redundant edge (tree or disconnected)".into(),
    })?;
    let n = g.node_count();
    let (mut h, phi) = trivial_lift(g, l);
    for c in 0..l {
        assert!(h.remove_edge(c * n + e.from, c * n + e.to, e.label));
    }
    for c in 0..l {
        h.add_edge(c * n + e.from, ((c + 1) % l) * n + e.to, e.label)
            .expect("cyclic rewiring preserves properness");
    }
    Ok((h, phi))
}

/// The bipartite double cover of an undirected graph: vertex set
/// `V × {0, 1}` (copy 1 of `v` is `n + v`), with `{u, v} ∈ E` giving edges
/// `{u, n+v}` and `{v, n+u}`. Always bipartite and inherently 2-coloured;
/// used by the matching-based PO algorithms (`locap-algos`).
pub fn bipartite_double_cover(g: &Graph) -> Graph {
    let n = g.node_count();
    let mut h = Graph::new(2 * n);
    for e in g.edges() {
        h.add_edge(e.u, n + e.v).expect("double cover edges are simple");
        h.add_edge(e.v, n + e.u).expect("double cover edges are simple");
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view;
    use locap_graph::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Fig. 3 base graph: a 4-cycle a-b-c-d with PO structure.
    fn fig3_base() -> LDigraph {
        let g = gen::cycle(4);
        locap_graph::PoGraph::canonical(&g).digraph().clone()
    }

    #[test]
    fn trivial_lift_verifies() {
        let g = fig3_base();
        let (h, phi) = trivial_lift(&g, 2);
        phi.verify(&h, &g).unwrap();
        assert_eq!(phi.uniform_fibre_size(&g), Some(2));
        assert_eq!(phi.fibre(1, &g), vec![1, 5]);
        assert_eq!(h.node_count(), 8);
    }

    #[test]
    fn random_lift_verifies_and_preserves_views() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = fig3_base();
        for l in [1usize, 2, 3, 5] {
            let (h, phi) = random_lift(&g, l, &mut rng);
            phi.verify(&h, &g).unwrap();
            assert_eq!(phi.uniform_fibre_size(&g), Some(l));
            for v in 0..h.node_count() {
                for r in 0..3 {
                    assert_eq!(
                        view(&h, v, r),
                        view(&g, phi.image(v), r),
                        "view invariance at l={l}, v={v}, r={r}"
                    );
                }
            }
        }
    }

    #[test]
    fn verify_catches_defects() {
        let g = fig3_base();
        let (h, _) = trivial_lift(&g, 2);

        // wrong domain
        assert!(matches!(
            CoveringMap::new(vec![0; 3]).verify(&h, &g),
            Err(LiftError::WrongDomain { .. })
        ));
        // out of range
        assert!(matches!(
            CoveringMap::new(vec![99; 8]).verify(&h, &g),
            Err(LiftError::ImageOutOfRange { .. })
        ));
        // not onto
        assert!(matches!(
            CoveringMap::new(vec![0; 8]).verify(&h, &g),
            Err(LiftError::NotOnto { .. }) | Err(LiftError::NotLocalBijection { .. })
        ));
        // scrambled map: not a local bijection
        let mut bad: Vec<usize> = (0..8).map(|x| x % 4).collect();
        bad.swap(0, 1);
        assert!(CoveringMap::new(bad).verify(&h, &g).is_err());
    }

    #[test]
    fn connect_copies_is_connected_lift() {
        let g = fig3_base(); // a 4-cycle: connected, not a tree
        for l in [2usize, 3, 7] {
            let (h, phi) = connect_copies(&g, l).unwrap();
            phi.verify(&h, &g).unwrap();
            assert!(h.underlying_simple().is_connected(), "l = {l}");
            assert_eq!(phi.uniform_fibre_size(&g), Some(l));
        }
    }

    #[test]
    fn connect_copies_fails_on_trees() {
        let path = gen::path(4);
        let d = locap_graph::PoGraph::canonical(&path).digraph().clone();
        assert!(connect_copies(&d, 3).is_err());
        assert!(connect_copies(&d, 0).is_err());
    }

    #[test]
    fn lifted_girth_never_decreases() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = fig3_base();
        let g_girth = g.underlying_simple().girth().unwrap();
        for l in [2usize, 4] {
            let (h, _) = random_lift(&g, l, &mut rng);
            let hu = h.underlying_simple();
            if let Some(girth) = hu.girth() {
                assert!(girth >= g_girth, "lift girth {girth} >= base girth {g_girth}");
            }
        }
    }

    #[test]
    fn double_cover_is_bipartite_2n() {
        let g = gen::petersen();
        let h = bipartite_double_cover(&g);
        assert_eq!(h.node_count(), 20);
        assert_eq!(h.edge_count(), 30);
        // bipartite: no edge within {0..10} or {10..20}
        for e in h.edges() {
            assert!(e.u < 10 && e.v >= 10);
        }
        assert!(h.is_regular(3));
    }

    #[test]
    fn double_cover_of_odd_cycle_is_big_cycle() {
        // The double cover of C_5 is C_10.
        let h = bipartite_double_cover(&gen::cycle(5));
        assert!(h.is_regular(2));
        assert!(h.is_connected());
        assert_eq!(h.girth(), Some(10));
    }

    #[test]
    fn double_cover_of_bipartite_graph_disconnects() {
        // The double cover of C_4 is two disjoint C_4's.
        let h = bipartite_double_cover(&gen::cycle(4));
        assert_eq!(h.components().len(), 2);
    }

    #[test]
    fn find_redundant_edge_on_cycle_vs_tree() {
        let c = fig3_base();
        assert!(find_redundant_edge(&c).is_some());
        let p = locap_graph::PoGraph::canonical(&gen::path(5)).digraph().clone();
        assert!(find_redundant_edge(&p).is_none());
    }
}
